//! Property tests: a [`ShardedStore`] is *bit-identical* to the
//! unsharded [`ClusterStore`] for every shard count — same per-snapshot
//! stats, same merged cluster order, same published snapshot, same
//! scores (to the last mantissa bit) and same carved NC1–NC3 datasets.
//!
//! This is the contract that lets the rest of the pipeline (scoring,
//! customization, nc-serve carving) run unchanged on top of shards.

use nc_core::cluster::ClusterStore;
use nc_core::customize::{customize, CustomDataset, CustomizeParams};
use nc_core::heterogeneity::Scope;
use nc_core::import::{import_snapshot, ImportStats};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::record::DedupPolicy;
use nc_core::scoring::{score_clusters, score_store, ScoringConfig};
use nc_core::snapshot::StoreSnapshot;
use nc_shard::ShardedStore;
use nc_votergen::config::GeneratorConfig;
use nc_votergen::registry::Registry;
use nc_votergen::schema::Row;
use nc_votergen::snapshot::{standard_calendar, Snapshot};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn generate_snapshots(seed: u64, population: usize, count: usize) -> Vec<Snapshot> {
    let mut registry = Registry::new(GeneratorConfig {
        seed,
        initial_population: population,
        ..Default::default()
    });
    standard_calendar()
        .iter()
        .take(count)
        .map(|info| registry.generate_snapshot(info))
        .collect()
}

/// Bit-exact rendering of a carved dataset: cluster NCIDs plus every
/// record as its TSV line, in order.
fn render(ds: &CustomDataset) -> Vec<String> {
    ds.clusters
        .iter()
        .flat_map(|c| {
            std::iter::once(format!("# {}", c.ncid)).chain(c.records.iter().map(Row::to_tsv))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_store_is_bit_identical_to_unsharded(
        seed in 0u64..10_000,
        population in 40usize..80,
        snapshot_count in 1usize..4,
    ) {
        let snapshots = generate_snapshots(seed, population, snapshot_count);

        // Unsharded reference: store, stats, snapshot, scores.
        let mut plain = ClusterStore::new();
        let mut plain_stats: Vec<ImportStats> = Vec::new();
        for snap in &snapshots {
            plain_stats.push(import_snapshot(&mut plain, snap, DedupPolicy::Trimmed, 1));
        }
        let reference = StoreSnapshot::capture(&plain, 1);
        let plausibility = PlausibilityScorer::new();
        let entropy = reference.entropy_scorer(Scope::Person);
        let plain_scores = score_store(
            &plain,
            &plausibility,
            &entropy,
            &ScoringConfig::with_threads(1),
        );
        let plain_carves: Vec<Vec<String>> = [
            CustomizeParams::nc1(30, 10, seed),
            CustomizeParams::nc2(30, 10, seed),
            CustomizeParams::nc3(30, 10, seed),
        ]
        .iter()
        .map(|params| render(&customize(&plain, &entropy, params)))
        .collect();

        for shards in SHARD_COUNTS {
            let mut sharded = ShardedStore::new(shards);
            let stats: Vec<ImportStats> = snapshots
                .iter()
                .map(|snap| sharded.ingest_snapshot(snap, DedupPolicy::Trimmed, 1))
                .collect();
            prop_assert_eq!(&stats, &plain_stats, "stats, shards={}", shards);

            // Merged iteration order is the unsharded founding order.
            let plain_ids: Vec<&str> = reference
                .clusters()
                .iter()
                .map(|(ncid, _)| ncid.as_str())
                .collect();
            let sharded_ids: Vec<String> = sharded
                .cluster_ids()
                .into_iter()
                .map(|(ncid, _)| ncid)
                .collect();
            prop_assert_eq!(&sharded_ids, &plain_ids, "order, shards={}", shards);

            // The published snapshot is the same object, byte for byte.
            let published = sharded.publish(1);
            prop_assert_eq!(
                published.clusters(),
                reference.clusters(),
                "published clusters, shards={}",
                shards
            );

            // Scoring through the shared score_clusters path is
            // bit-identical (and thread-count independent: the
            // reference ran single-threaded, this one on hardware).
            let scores = score_clusters(
                published.clusters(),
                &plausibility,
                &published.entropy_scorer(Scope::Person),
                &ScoringConfig::with_threads(0),
            );
            prop_assert_eq!(scores.len(), plain_scores.len());
            for (got, want) in scores.iter().zip(&plain_scores) {
                prop_assert_eq!(&got.ncid, &want.ncid);
                prop_assert_eq!(got.records, want.records);
                prop_assert_eq!(
                    got.plausibility.to_bits(),
                    want.plausibility.to_bits(),
                    "plausibility of {} differs, shards={}",
                    got.ncid.clone(),
                    shards
                );
                prop_assert_eq!(
                    got.heterogeneity.to_bits(),
                    want.heterogeneity.to_bits(),
                    "heterogeneity of {} differs, shards={}",
                    got.ncid.clone(),
                    shards
                );
            }

            // Carved NC1–NC3 presets are bit-identical too.
            let carves: Vec<Vec<String>> = [
                CustomizeParams::nc1(30, 10, seed),
                CustomizeParams::nc2(30, 10, seed),
                CustomizeParams::nc3(30, 10, seed),
            ]
            .iter()
            .map(|params| {
                render(&published.customize(&published.entropy_scorer(Scope::Person), params))
            })
            .collect();
            prop_assert_eq!(&carves, &plain_carves, "carves, shards={}", shards);
        }
    }
}
