//! Per-shard write-ahead logs, the shard manifest, and crash recovery.
//!
//! # On-disk layout
//!
//! ```text
//! <state>/manifest.tsv          commit point (atomic tmp+fsync+rename)
//! <state>/shard-0/wal-000000.log
//! <state>/shard-0/wal-000001.log   segments rotate at a size bound,
//! <state>/shard-1/wal-000000.log   always on a snapshot boundary
//! ...
//! ```
//!
//! Every WAL and manifest line is framed with the CRC-32 trailer of
//! [`nc_docstore::persist::frame_line`], so torn or bit-flipped tails
//! are detected line-by-line. WAL record grammar (bodies, pre-framing):
//!
//! ```text
//! B\t<date>\t<version>      snapshot begins
//! R\t<seq>\t<row-tsv>       one routed row (duplicates included —
//!                           they still mutate cluster bookkeeping)
//! C\t<date>\t<rows>         snapshot ends; <rows> = this shard's count
//! ```
//!
//! # Commit point
//!
//! The *manifest* is the commit point, not the WAL `C` record. A
//! snapshot commits in two steps: (1) `C` appended and fsynced on every
//! shard WAL, (2) the manifest rewritten atomically listing the
//! snapshot as completed. Recovery replays WAL rows only for
//! manifest-listed snapshots; a WAL-committed-but-unmanifested snapshot
//! is *discarded* with exact loss reporting, because re-importing its
//! source file reproduces the same store state, whereas replaying it
//! and then re-importing would double the rows-seen bookkeeping.

use std::collections::BTreeSet;
use std::fs::{self, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::tsv::QuarantineReport;
use nc_docstore::persist::{frame_line, read_framed, sync_dir};
use nc_vfs::{Vfs, VfsFile};
use nc_votergen::schema::Row;

/// Aggregated outcome of WAL recovery across all shards.
///
/// "Discarded" covers both physical damage (torn or corrupt tail
/// lines) and logical rollback (rows logged for snapshots that never
/// reached the manifest commit point); [`WalRecovery::details`] says
/// which was which, per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Manifest-committed snapshots replayed into the store.
    pub snapshots_applied: usize,
    /// Rows re-applied from the logs.
    pub rows_replayed: u64,
    /// Parsed rows dropped because their snapshot never committed.
    pub rows_discarded: u64,
    /// Log bytes truncated (uncommitted records plus unparseable tail).
    pub bytes_discarded: u64,
    /// Shards whose log ended in physically damaged data.
    pub torn_tails: usize,
    /// Human-readable per-shard notes on everything dropped.
    pub details: Vec<String>,
}

impl WalRecovery {
    /// True when nothing was dropped anywhere.
    pub fn is_clean(&self) -> bool {
        self.rows_discarded == 0 && self.bytes_discarded == 0 && self.torn_tails == 0
    }

    /// Fold one shard's recovery into the aggregate.
    pub(crate) fn absorb(&mut self, other: WalRecovery) {
        self.snapshots_applied += other.snapshots_applied;
        self.rows_replayed += other.rows_replayed;
        self.rows_discarded += other.rows_discarded;
        self.bytes_discarded += other.bytes_discarded;
        self.torn_tails += other.torn_tails;
        self.details.extend(other.details);
    }
}

fn segment_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Directory holding one shard's segmented log under an engine state
/// directory (`<state>/shard-<n>/`). Public so log consumers — the
/// change stream in `nc-stream` — can tail the same files the engine
/// writes without guessing the layout.
pub fn shard_log_dir(state_dir: &Path, shard: usize) -> PathBuf {
    state_dir.join(format!("shard-{shard}"))
}

/// Byte position of a log tailer within one shard's segmented WAL.
///
/// The default cursor (`segment: 0, offset: 0`) points at the very
/// first record ever logged. Cursors returned by [`tail_group`] always
/// sit on a group boundary (just past a `C` record), which is also
/// where rotation happens — so a cursor never points into the middle
/// of a snapshot's records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailCursor {
    /// Segment index (the `NNNNNN` of `wal-NNNNNN.log`).
    pub segment: u32,
    /// Byte offset of the next unread record within that segment.
    pub offset: u64,
}

/// One complete `B..C` snapshot group read from a shard's log by
/// [`tail_group`]. Rows carry only their global sequence number and
/// trimmed NCID — enough to derive cluster-level change events without
/// paying for a full row parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailGroup {
    /// Snapshot date from the `B` record.
    pub date: String,
    /// Import version from the `B` record.
    pub version: u32,
    /// `(global sequence number, trimmed NCID)` per logged row, in log
    /// (= original snapshot) order. Duplicate-dropped rows are
    /// included, exactly as the WAL records them.
    pub rows: Vec<(u64, String)>,
    /// Cursor positioned just past this group's commit record.
    pub next: TailCursor,
}

/// Read the next complete `B..C` group from a shard's log, starting at
/// `cursor`.
///
/// Returns `Ok(None)` when no *complete* group is readable yet: a
/// fresh directory, a cursor at the durable end of the log, or a tail
/// that is torn, corrupt, or still being written. Callers that know
/// (from the manifest) that a committed group must exist at the cursor
/// should treat `None` as desynchronization, because `C` records are
/// fsynced before the manifest commits.
///
/// Rotation is handled transparently: a cursor at the clean end of a
/// segment advances to the next segment when one exists. A segment
/// *missing* beneath the cursor while later segments exist means the
/// log was rewritten behind the tailer (wipe + re-ingest) and is
/// reported as an error rather than silently rereading.
pub fn tail_group(dir: &Path, cursor: TailCursor) -> io::Result<Option<TailGroup>> {
    let mut segment = cursor.segment;
    let mut offset = cursor.offset;
    loop {
        let path = segment_path(dir, segment);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                let newer = segments(dir)?.iter().any(|(idx, _)| *idx > segment);
                if newer {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("wal segment {segment} missing beneath a live log"),
                    ));
                }
                return Ok(None);
            }
            Err(err) => return Err(err),
        };
        let start = usize::try_from(offset).unwrap_or(usize::MAX);
        if start > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wal segment {segment} truncated beneath cursor offset {offset}"),
            ));
        }
        if start == data.len() {
            // Clean end of this segment. A later segment means the
            // writer rotated here (always on a group boundary).
            if segments(dir)?.iter().any(|(idx, _)| *idx == segment + 1) {
                segment += 1;
                offset = 0;
                continue;
            }
            return Ok(None);
        }

        let mut pos = start;
        let mut current: Option<(String, u32)> = None;
        let mut rows: Vec<(u64, String)> = Vec::new();
        while pos < data.len() {
            let Some(nl) = data[pos..].iter().position(|&b| b == b'\n') else {
                return Ok(None); // partial line: still being written or torn
            };
            let line = &data[pos..pos + nl];
            let Some(body) = std::str::from_utf8(line).ok().and_then(read_framed) else {
                return Ok(None); // corrupt frame: awaiting recovery
            };
            if let Some(rest) = body.strip_prefix("B\t") {
                let parsed = rest
                    .split_once('\t')
                    .and_then(|(date, v)| v.parse::<u32>().ok().map(|v| (date.to_owned(), v)));
                match parsed {
                    Some(begin) if current.is_none() => current = Some(begin),
                    _ => return Ok(None),
                }
            } else if let Some(rest) = body.strip_prefix("R\t") {
                let parsed = rest.split_once('\t').and_then(|(seq, tsv)| {
                    let ncid = tsv.split('\t').next()?.trim().to_owned();
                    Some((seq.parse::<u64>().ok()?, ncid))
                });
                match (parsed, current.is_some()) {
                    (Some(entry), true) => rows.push(entry),
                    _ => return Ok(None),
                }
            } else if let Some(rest) = body.strip_prefix("C\t") {
                let parsed = rest
                    .split_once('\t')
                    .and_then(|(date, n)| n.parse::<u64>().ok().map(|n| (date, n)));
                let consistent = matches!(
                    (&parsed, &current),
                    (Some((date, n)), Some((cur, _)))
                        if *date == cur.as_str() && *n == rows.len() as u64
                );
                if !consistent {
                    return Ok(None);
                }
                let (date, version) = current.take().expect("checked above");
                return Ok(Some(TailGroup {
                    date,
                    version,
                    rows,
                    next: TailCursor {
                        segment,
                        offset: (pos + nl + 1) as u64,
                    },
                }));
            } else {
                return Ok(None);
            }
            pos += nl + 1;
        }
        return Ok(None); // B (+ some R) but no C yet: group in flight
    }
}

/// Existing WAL segments in `dir`, sorted by index.
pub(crate) fn segments(dir: &Path) -> io::Result<Vec<(u32, PathBuf)>> {
    let mut found = Vec::new();
    if !dir.exists() {
        return Ok(found);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            found.push((idx, path));
        }
    }
    found.sort_by_key(|(idx, _)| *idx);
    Ok(found)
}

/// One shard's append-only log. All mutating syscalls go through the
/// injected [`Vfs`], so the fault sweeps can fail any one of them.
#[derive(Debug)]
pub(crate) struct ShardWal {
    dir: PathBuf,
    segment: u32,
    writer: BufWriter<Box<dyn VfsFile>>,
    bytes: u64,
    segment_bytes: u64,
    vfs: Arc<dyn Vfs>,
}

impl ShardWal {
    /// Open the shard's log for appending, continuing the last segment
    /// (or creating `wal-000000.log` in a fresh directory).
    pub(crate) fn open(dir: &Path, segment_bytes: u64, vfs: Arc<dyn Vfs>) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        let existing = segments(dir)?;
        let (segment, created) = match existing.last() {
            Some((idx, _)) => (*idx, false),
            None => (0, true),
        };
        let path = segment_path(dir, segment);
        let file = vfs.append(&path)?;
        let bytes = file.file_len()?;
        if created {
            vfs.sync_dir(dir)?;
        }
        Ok(ShardWal {
            dir: dir.to_path_buf(),
            segment,
            writer: BufWriter::new(file),
            bytes,
            segment_bytes,
            vfs,
        })
    }

    fn append(&mut self, body: &str) -> io::Result<()> {
        let line = frame_line(body);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Log the start of a snapshot.
    pub(crate) fn begin_snapshot(&mut self, date: &str, version: u32) -> io::Result<()> {
        self.append(&format!("B\t{date}\t{version}"))
    }

    /// Log one routed row under its global sequence number.
    pub(crate) fn append_row(&mut self, seq: u64, row: &Row) -> io::Result<()> {
        self.append(&format!("R\t{seq}\t{}", row.to_tsv()))
    }

    /// Log the end of a snapshot (`rows` = this shard's routed count)
    /// and make everything durable.
    pub(crate) fn commit_snapshot(&mut self, date: &str, rows: u64) -> io::Result<()> {
        self.append(&format!("C\t{date}\t{rows}"))?;
        self.writer.flush()?;
        self.writer.get_mut().sync_file()
    }

    /// Rotate to a fresh segment when the current one has outgrown the
    /// size bound. Only called on snapshot boundaries, so a snapshot's
    /// records never straddle segments (recovery relies on this).
    pub(crate) fn maybe_rotate(&mut self) -> io::Result<bool> {
        if self.bytes <= self.segment_bytes {
            return Ok(false);
        }
        self.writer.flush()?;
        self.writer.get_mut().sync_file()?;
        self.segment += 1;
        let path = segment_path(&self.dir, self.segment);
        let file = self.vfs.create(&path)?;
        self.vfs.sync_dir(&self.dir)?;
        self.writer = BufWriter::new(file);
        self.bytes = 0;
        Ok(true)
    }
}

/// One manifest-committed snapshot recovered from a shard's log.
#[derive(Debug)]
pub(crate) struct ReplaySnapshot {
    /// Snapshot date from the `B` record.
    pub date: String,
    /// Import version from the `B` record.
    pub version: u32,
    /// `(global sequence number, row)` in logged (= original) order.
    pub rows: Vec<(u64, Row)>,
}

/// Everything recovered from one shard's log.
#[derive(Debug)]
pub(crate) struct ShardReplay {
    /// Snapshots to re-apply, in commit order.
    pub snapshots: Vec<ReplaySnapshot>,
    /// This shard's contribution to the aggregate [`WalRecovery`].
    pub recovery: WalRecovery,
}

/// Replay one shard's log, keeping only snapshots in `completed` (the
/// manifest's list) and truncating everything after the last kept
/// commit — torn tails, corrupt lines, and WAL-committed-but-
/// unmanifested snapshots alike — with exact loss accounting.
pub(crate) fn replay_shard(dir: &Path, completed: &BTreeSet<String>) -> io::Result<ShardReplay> {
    let shard_name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("shard")
        .to_owned();
    let segs = segments(dir)?;
    let mut out = ShardReplay {
        snapshots: Vec::new(),
        recovery: WalRecovery::default(),
    };

    // Prefix-scan the segments in order; `keep` is the position just
    // after the last commit we re-applied.
    let mut keep: Option<(usize, u64)> = None;
    let mut pending: Vec<(u64, Row)> = Vec::new();
    let mut current: Option<(String, u32)> = None;
    let mut damaged: Option<String> = None;
    let mut discarded_rows_after_keep: u64 = 0;

    'segments: for (si, (_, path)) in segs.iter().enumerate() {
        let data = fs::read(path)?;
        let mut offset: usize = 0;
        while offset < data.len() {
            let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
                damaged = Some(format!("{shard_name}: partial line at end of log"));
                break 'segments;
            };
            let line = &data[offset..offset + nl];
            let body = match std::str::from_utf8(line).ok().and_then(read_framed) {
                Some(body) => body,
                None => {
                    damaged = Some(format!(
                        "{shard_name}: corrupt record at byte {offset} of segment {si}"
                    ));
                    break 'segments;
                }
            };
            if let Some(rest) = body.strip_prefix("B\t") {
                let parsed = rest
                    .split_once('\t')
                    .and_then(|(date, v)| v.parse::<u32>().ok().map(|v| (date.to_owned(), v)));
                match parsed {
                    Some(begin) if current.is_none() => {
                        current = Some(begin);
                        pending.clear();
                    }
                    _ => {
                        damaged = Some(format!(
                            "{shard_name}: malformed or misplaced begin record at byte {offset}"
                        ));
                        break 'segments;
                    }
                }
            } else if let Some(rest) = body.strip_prefix("R\t") {
                let parsed = rest.split_once('\t').and_then(|(seq, tsv)| {
                    Some((seq.parse::<u64>().ok()?, Row::from_tsv(tsv)?))
                });
                match (parsed, current.is_some()) {
                    (Some(entry), true) => pending.push(entry),
                    _ => {
                        damaged = Some(format!(
                            "{shard_name}: malformed or stray row record at byte {offset}"
                        ));
                        break 'segments;
                    }
                }
            } else if let Some(rest) = body.strip_prefix("C\t") {
                let parsed = rest
                    .split_once('\t')
                    .and_then(|(date, n)| n.parse::<u64>().ok().map(|n| (date, n)));
                let consistent = matches!(
                    (&parsed, &current),
                    (Some((date, rows)), Some((cur, _)))
                        if *date == cur.as_str() && *rows == pending.len() as u64
                );
                if !consistent {
                    damaged = Some(format!(
                        "{shard_name}: commit record disagrees with its snapshot at byte {offset}"
                    ));
                    break 'segments;
                }
                let (date, version) = current.take().expect("checked above");
                if completed.contains(&date) {
                    let rows = std::mem::take(&mut pending);
                    out.recovery.rows_replayed += rows.len() as u64;
                    out.recovery.snapshots_applied += 1;
                    out.snapshots.push(ReplaySnapshot {
                        date,
                        version,
                        rows,
                    });
                    keep = Some((si, (offset + nl + 1) as u64));
                    discarded_rows_after_keep = 0;
                } else {
                    // Logged and WAL-committed, but the manifest never
                    // advanced: the crash hit between the two steps.
                    discarded_rows_after_keep += pending.len() as u64;
                    out.recovery.details.push(format!(
                        "{shard_name}: rolled back snapshot {date} ({} rows) — \
                         logged but never committed to the manifest",
                        pending.len()
                    ));
                    pending.clear();
                }
            } else {
                damaged = Some(format!(
                    "{shard_name}: unknown record type at byte {offset}"
                ));
                break 'segments;
            }
            offset += nl + 1;
        }
    }

    if let Some(reason) = damaged {
        out.recovery.torn_tails += 1;
        out.recovery.details.push(reason);
    }
    // Rows from a snapshot cut off mid-flight (B + some R, no C).
    if !pending.is_empty() {
        if let Some((date, _)) = &current {
            out.recovery.details.push(format!(
                "{shard_name}: dropped incomplete snapshot {date} ({} rows)",
                pending.len()
            ));
        }
        discarded_rows_after_keep += pending.len() as u64;
    }
    out.recovery.rows_discarded += discarded_rows_after_keep;

    // Truncate the logs back to the keep point and account for every
    // byte dropped.
    match keep {
        Some((keep_si, keep_off)) => {
            for (si, (_, path)) in segs.iter().enumerate() {
                let len = fs::metadata(path)?.len();
                if si < keep_si {
                    continue;
                }
                if si == keep_si {
                    if len > keep_off {
                        out.recovery.bytes_discarded += len - keep_off;
                        let file = OpenOptions::new().write(true).open(path)?;
                        file.set_len(keep_off)?;
                        file.sync_all()?;
                    }
                } else {
                    out.recovery.bytes_discarded += len;
                    fs::remove_file(path)?;
                }
            }
        }
        None => {
            // Nothing durable at all: clear the shard's log.
            for (_, path) in &segs {
                out.recovery.bytes_discarded += fs::metadata(path)?.len();
                fs::remove_file(path)?;
            }
        }
    }
    if !segs.is_empty() {
        sync_dir(dir)?;
    }
    Ok(out)
}

const MANIFEST_FILE: &str = "manifest.tsv";
const MANIFEST_HEADER: &str = "nc-shard-manifest";
const MANIFEST_FORMAT: u32 = 1;

fn policy_label(policy: DedupPolicy) -> &'static str {
    match policy {
        DedupPolicy::None => "None",
        DedupPolicy::Exact => "Exact",
        DedupPolicy::Trimmed => "Trimmed",
        DedupPolicy::PersonData => "PersonData",
    }
}

fn parse_policy(label: &str) -> Option<DedupPolicy> {
    DedupPolicy::ALL
        .into_iter()
        .find(|p| policy_label(*p) == label)
}

/// The engine's commit point: which snapshots are durably ingested,
/// under which parameters, with their exact [`ImportStats`].
///
/// Public read-only: log consumers (the `nc-stream` change stream)
/// load the manifest to learn which snapshot groups are committed and
/// therefore safe to deliver. Only the engine writes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard count the logs were written under (routing depends on it).
    pub shards: usize,
    /// Dedup policy of the ingest.
    pub policy: DedupPolicy,
    /// Import version of the ingest.
    pub version: u32,
    /// Completed snapshots, in ingest order, with their merged stats.
    pub completed: Vec<ImportStats>,
    /// Archive-level quarantine accounting at the last commit.
    pub quarantine: QuarantineReport,
}

/// Outcome of reading the manifest off disk.
#[derive(Debug)]
pub enum ManifestState {
    /// No manifest: a fresh (or never-committed) state directory.
    Absent,
    /// A manifest exists but cannot be trusted; the reason explains.
    Damaged(String),
    /// The manifest parsed and verified cleanly.
    Loaded(ShardManifest),
}

impl ShardManifest {
    /// Dates of every completed snapshot, for WAL replay filtering.
    pub fn completed_dates(&self) -> BTreeSet<String> {
        self.completed.iter().map(|s| s.date.clone()).collect()
    }

    /// Atomically persist the manifest into `state_dir`
    /// (tmp + fsync + rename + directory fsync), making everything the
    /// WALs hold for the listed snapshots durable-by-reference. Every
    /// mutating syscall goes through `vfs`; the commit-point guarantee
    /// ("old manifest or new manifest, never a third state") is swept
    /// at every crash point in `tests/syscall_sweep.rs`.
    pub(crate) fn save(&self, state_dir: &Path, vfs: &dyn Vfs) -> io::Result<()> {
        let mut text = String::new();
        let header = format!(
            "{MANIFEST_HEADER}\t{MANIFEST_FORMAT}\t{}\t{}\t{}",
            self.shards,
            policy_label(self.policy),
            self.version
        );
        text.push_str(&frame_line(&header));
        text.push('\n');
        let q = &self.quarantine;
        let qline = format!(
            "Q\t{}\t{}\t{}",
            q.lines_quarantined, q.files_quarantined, q.remapped_headers
        );
        text.push_str(&frame_line(&qline));
        text.push('\n');
        for s in &self.completed {
            let sline = format!(
                "S\t{}\t{}\t{}\t{}\t{}",
                s.date, s.total_rows, s.new_records, s.new_clusters, s.quarantined
            );
            text.push_str(&frame_line(&sline));
            text.push('\n');
        }

        let tmp = state_dir.join(format!("{MANIFEST_FILE}.tmp"));
        let path = state_dir.join(MANIFEST_FILE);
        {
            let mut file = vfs.create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_file()?;
        }
        vfs.rename(&tmp, &path)?;
        vfs.sync_dir(state_dir)?;
        Ok(())
    }

    /// Read the manifest from `state_dir`, verifying every line frame.
    pub fn load(state_dir: &Path) -> io::Result<ManifestState> {
        let path = state_dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(ManifestState::Absent),
            Err(err) => return Err(err),
        };
        let damaged = |what: &str| Ok(ManifestState::Damaged(format!("manifest: {what}")));

        let mut lines = text.lines();
        let Some(header) = lines.next().and_then(read_framed) else {
            return damaged("missing or corrupt header line");
        };
        let mut fields = header.split('\t');
        if fields.next() != Some(MANIFEST_HEADER) {
            return damaged("not a shard manifest");
        }
        if fields.next().and_then(|v| v.parse::<u32>().ok()) != Some(MANIFEST_FORMAT) {
            return damaged("unsupported format version");
        }
        let Some(shards) = fields.next().and_then(|v| v.parse::<usize>().ok()) else {
            return damaged("bad shard count");
        };
        let Some(policy) = fields.next().and_then(parse_policy) else {
            return damaged("unknown dedup policy");
        };
        let Some(version) = fields.next().and_then(|v| v.parse::<u32>().ok()) else {
            return damaged("bad version");
        };

        let Some(qbody) = lines.next().and_then(read_framed) else {
            return damaged("missing or corrupt quarantine line");
        };
        let mut q = qbody.split('\t');
        let quarantine = match (
            q.next(),
            q.next().and_then(|v| v.parse().ok()),
            q.next().and_then(|v| v.parse().ok()),
            q.next().and_then(|v| v.parse().ok()),
        ) {
            (Some("Q"), Some(lines_q), Some(files_q), Some(remapped)) => QuarantineReport {
                lines_quarantined: lines_q,
                files_quarantined: files_q,
                remapped_headers: remapped,
                per_snapshot: Vec::new(),
            },
            _ => return damaged("bad quarantine line"),
        };

        let mut completed = Vec::new();
        for line in lines {
            let Some(body) = read_framed(line) else {
                return damaged("corrupt snapshot line");
            };
            let mut s = body.split('\t');
            let stats = match (
                s.next(),
                s.next(),
                s.next().and_then(|v| v.parse().ok()),
                s.next().and_then(|v| v.parse().ok()),
                s.next().and_then(|v| v.parse().ok()),
                s.next().and_then(|v| v.parse().ok()),
            ) {
                (Some("S"), Some(date), Some(total), Some(records), Some(clusters), Some(quar)) => {
                    ImportStats {
                        date: date.to_owned(),
                        total_rows: total,
                        new_records: records,
                        new_clusters: clusters,
                        quarantined: quar,
                    }
                }
                _ => return damaged("bad snapshot line"),
            };
            completed.push(stats);
        }
        let mut manifest = ShardManifest {
            shards,
            policy,
            version,
            completed,
            quarantine,
        };
        manifest.quarantine.per_snapshot = manifest
            .completed
            .iter()
            .map(|s| (s.date.clone(), s.quarantined))
            .collect();
        Ok(ManifestState::Loaded(manifest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_votergen::schema::{Row, LAST_NAME, NCID};
    use nc_vfs::StdVfs;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("nc_shard_wal_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn row(ncid: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(LAST_NAME, "DOE");
        r
    }

    fn write_snapshot_records(wal: &mut ShardWal, date: &str, seqs: &[u64]) {
        wal.begin_snapshot(date, 1).unwrap();
        for &seq in seqs {
            wal.append_row(seq, &row(&format!("NC{seq}"))).unwrap();
        }
        wal.commit_snapshot(date, seqs.len() as u64).unwrap();
    }

    #[test]
    fn clean_log_replays_only_manifested_snapshots() {
        let dir = tmp_dir("clean");
        let mut wal = ShardWal::open(&dir, 1 << 20, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0, 1, 2]);
        write_snapshot_records(&mut wal, "2009-01-01", &[5, 7]);
        drop(wal);

        let completed: BTreeSet<String> = ["2008-11-04".to_owned()].into();
        let replay = replay_shard(&dir, &completed).unwrap();
        assert_eq!(replay.snapshots.len(), 1);
        assert_eq!(replay.snapshots[0].date, "2008-11-04");
        assert_eq!(replay.snapshots[0].rows.len(), 3);
        assert_eq!(replay.recovery.rows_replayed, 3);
        // The unmanifested second snapshot rolls back with exact loss.
        assert_eq!(replay.recovery.rows_discarded, 2);
        assert!(replay.recovery.bytes_discarded > 0);
        assert_eq!(replay.recovery.torn_tails, 0);

        // After truncation the log replays identically again.
        let again = replay_shard(&dir, &completed).unwrap();
        assert_eq!(again.snapshots.len(), 1);
        assert!(again.recovery.is_clean());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_with_exact_accounting() {
        let dir = tmp_dir("torn");
        let mut wal = ShardWal::open(&dir, 1 << 20, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0, 1]);
        // Crash mid-snapshot: begin + one row, no commit, torn bytes.
        wal.begin_snapshot("2009-01-01", 1).unwrap();
        wal.append_row(9, &row("NC9")).unwrap();
        wal.commit_snapshot("2009-01-01", 1).unwrap();
        drop(wal);
        let seg = segment_path(&dir, 0);
        let full = fs::metadata(&seg).unwrap().len();
        // Chop the commit record in half to simulate the tear.
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();

        let completed: BTreeSet<String> = ["2008-11-04".to_owned()].into();
        let replay = replay_shard(&dir, &completed).unwrap();
        assert_eq!(replay.snapshots.len(), 1);
        assert_eq!(replay.recovery.rows_replayed, 2);
        assert_eq!(replay.recovery.rows_discarded, 1, "the parsed row of the torn snapshot");
        assert_eq!(replay.recovery.torn_tails, 1);
        assert!(replay.recovery.bytes_discarded > 0);
        assert!(fs::metadata(&seg).unwrap().len() < full);
        // Idempotent after truncation.
        assert!(replay_shard(&dir, &completed).unwrap().recovery.is_clean());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_on_snapshot_boundaries() {
        let dir = tmp_dir("rotate");
        let mut wal = ShardWal::open(&dir, 64, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0, 1, 2, 3]);
        assert!(wal.maybe_rotate().unwrap(), "past the 64-byte bound");
        write_snapshot_records(&mut wal, "2009-01-01", &[4, 5]);
        drop(wal);
        assert_eq!(segments(&dir).unwrap().len(), 2);

        let completed: BTreeSet<String> =
            ["2008-11-04".to_owned(), "2009-01-01".to_owned()].into();
        let replay = replay_shard(&dir, &completed).unwrap();
        assert_eq!(replay.snapshots.len(), 2);
        assert_eq!(replay.recovery.rows_replayed, 6);
        assert!(replay.recovery.is_clean());

        // Reopen appends to the *last* segment.
        let wal = ShardWal::open(&dir, 64, Arc::new(StdVfs)).unwrap();
        assert_eq!(wal.segment, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_middle_discards_everything_after_it() {
        let dir = tmp_dir("flip");
        let mut wal = ShardWal::open(&dir, 1 << 20, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0]);
        let keep_len = {
            wal.writer.flush().unwrap();
            fs::metadata(segment_path(&dir, 0)).unwrap().len()
        };
        write_snapshot_records(&mut wal, "2009-01-01", &[1, 2]);
        drop(wal);
        // Flip a byte inside the second snapshot's records.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let target = keep_len as usize + 10;
        bytes[target] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let completed: BTreeSet<String> =
            ["2008-11-04".to_owned(), "2009-01-01".to_owned()].into();
        let replay = replay_shard(&dir, &completed).unwrap();
        // Only the first snapshot survives; the engine notices the
        // second is missing and escalates to a full restart.
        assert_eq!(replay.snapshots.len(), 1);
        assert_eq!(replay.recovery.torn_tails, 1);
        assert_eq!(fs::metadata(&seg).unwrap().len(), keep_len);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tail_group_walks_groups_and_stops_at_the_durable_end() {
        let dir = tmp_dir("tail");
        assert_eq!(tail_group(&dir, TailCursor::default()).unwrap(), None);

        let mut wal = ShardWal::open(&dir, 1 << 20, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0, 1, 2]);
        write_snapshot_records(&mut wal, "2009-01-01", &[5, 7]);
        drop(wal);

        let first = tail_group(&dir, TailCursor::default()).unwrap().unwrap();
        assert_eq!(first.date, "2008-11-04");
        assert_eq!(first.version, 1);
        assert_eq!(
            first.rows,
            vec![(0, "NC0".into()), (1, "NC1".into()), (2, "NC2".into())]
        );
        let second = tail_group(&dir, first.next).unwrap().unwrap();
        assert_eq!(second.date, "2009-01-01");
        assert_eq!(second.rows, vec![(5, "NC5".into()), (7, "NC7".into())]);
        // Cursor now sits at the durable end.
        assert_eq!(tail_group(&dir, second.next).unwrap(), None);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tail_group_follows_rotation_and_refuses_none_on_torn_tails() {
        let dir = tmp_dir("tail_rotate");
        let mut wal = ShardWal::open(&dir, 64, Arc::new(StdVfs)).unwrap();
        write_snapshot_records(&mut wal, "2008-11-04", &[0, 1]);
        assert!(wal.maybe_rotate().unwrap());
        write_snapshot_records(&mut wal, "2009-01-01", &[2]);
        // Crash mid-group: begin + row, no commit yet.
        wal.begin_snapshot("2009-03-01", 1).unwrap();
        wal.append_row(9, &row("NC9")).unwrap();
        wal.writer.flush().unwrap();
        drop(wal);

        let first = tail_group(&dir, TailCursor::default()).unwrap().unwrap();
        assert_eq!(first.date, "2008-11-04");
        assert_eq!(first.next.segment, 0);
        // Cursor at the clean end of segment 0 crosses into segment 1.
        let second = tail_group(&dir, first.next).unwrap().unwrap();
        assert_eq!(second.date, "2009-01-01");
        assert_eq!(second.next.segment, 1);
        // The in-flight third group is not yet deliverable.
        assert_eq!(tail_group(&dir, second.next).unwrap(), None);

        // A segment vanishing beneath the cursor is an error, not None.
        fs::remove_file(segment_path(&dir, 0)).unwrap();
        assert!(tail_group(&dir, TailCursor::default()).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_detects_damage() {
        let dir = tmp_dir("manifest");
        let manifest = ShardManifest {
            shards: 3,
            policy: DedupPolicy::Trimmed,
            version: 2,
            completed: vec![
                ImportStats {
                    date: "2008-11-04".into(),
                    total_rows: 10,
                    new_records: 9,
                    new_clusters: 8,
                    quarantined: 1,
                },
                ImportStats {
                    date: "2009-01-01".into(),
                    total_rows: 12,
                    new_records: 3,
                    new_clusters: 1,
                    quarantined: 0,
                },
            ],
            quarantine: QuarantineReport {
                lines_quarantined: 1,
                files_quarantined: 0,
                remapped_headers: 2,
                per_snapshot: vec![("2008-11-04".into(), 1), ("2009-01-01".into(), 0)],
            },
        };
        manifest.save(&dir, &StdVfs).unwrap();
        match ShardManifest::load(&dir).unwrap() {
            ManifestState::Loaded(loaded) => assert_eq!(loaded, manifest),
            other => panic!("expected Loaded, got {other:?}"),
        }
        assert_eq!(
            manifest.completed_dates(),
            ["2008-11-04".to_owned(), "2009-01-01".to_owned()].into()
        );

        // Absent in an empty directory.
        let empty = tmp_dir("manifest_empty");
        assert!(matches!(
            ShardManifest::load(&empty).unwrap(),
            ManifestState::Absent
        ));

        // Any flipped byte is detected.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardManifest::load(&dir).unwrap(),
            ManifestState::Damaged(_)
        ));
        fs::remove_dir_all(dir).unwrap();
        fs::remove_dir_all(empty).unwrap();
    }
}
