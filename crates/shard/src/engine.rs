//! The WAL-backed engine: resumable archive ingest over a
//! [`ShardedStore`], with the shard manifest as the commit point and
//! incremental publish into `nc-serve`.
//!
//! # Lifecycle
//!
//! [`ShardEngine::open`] recovers whatever the state directory holds:
//! a clean manifest replays every committed snapshot from the per-shard
//! logs; a torn or missing tail is truncated with exact loss
//! accounting; a damaged manifest (or logs that cannot honour the
//! manifest's promises) discards the state and starts fresh, reporting
//! why. [`ShardEngine::ingest_archive`] then skips already-committed
//! snapshot files and ingests the rest — so a crashed run resumed over
//! the same archive converges on exactly the store an uninterrupted
//! run produces (asserted in `tests/wal_recovery.rs`).
//!
//! # Fault handling
//!
//! All durability-critical syscalls go through an injected
//! [`nc_vfs::Vfs`] ([`ShardEngine::open_with_vfs`]), so the sweep
//! tests can fail any single write, fsync or rename. When a write
//! fails mid-ingest, the engine *rolls back*: it reopens from disk
//! (replaying only manifest-committed snapshots, truncating the
//! in-flight suffix with exact loss accounting) and surfaces a typed
//! [`RecoveryReport`] via [`ShardEngine::last_failure`], while the
//! original error propagates to the caller. If even the reopen fails,
//! the engine is *poisoned* — further ingest refuses deterministically
//! instead of appending to logs of unknown integrity.

use std::collections::BTreeSet;
use std::fs::{self, File};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::snapshot::StoreSnapshot;
use nc_core::tsv::{
    archive_files, date_from_file_name, read_snapshot_budgeted, ImportOptions, QuarantineReport,
    TsvError,
};
use nc_serve::retry::{RetryExhausted, RetryPolicy};
use nc_serve::snapshot::{ServeSnapshot, SnapshotRegistry};
use nc_vfs::{StdVfs, Vfs};
use nc_votergen::snapshot::Snapshot;

use crate::ingest;
use crate::store::ShardedStore;
use crate::wal::{
    self, shard_log_dir as shard_dir, ManifestState, ShardManifest, ShardWal, WalRecovery,
};

/// Ingest parameters fixed for the lifetime of a state directory.
///
/// Shard count, policy and version are burned into the manifest —
/// reopening with different values is a hard
/// [`TsvError::Checkpoint`] error, because the logs' row routing and
/// dedup outcomes depend on all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEngineConfig {
    /// Number of hash partitions (clamped to ≥ 1).
    pub shards: usize,
    /// Dedup policy applied on ingest.
    pub policy: DedupPolicy,
    /// Import version recorded on every ingested row.
    pub version: u32,
    /// Bounded-channel depth between the reader and each shard worker.
    pub channel_depth: usize,
    /// WAL segment rotation bound, in bytes.
    pub segment_bytes: u64,
}

impl ShardEngineConfig {
    /// Defaults for everything but the three identity parameters.
    pub fn new(shards: usize, policy: DedupPolicy, version: u32) -> Self {
        ShardEngineConfig {
            shards: shards.max(1),
            policy,
            version,
            channel_depth: 1024,
            segment_bytes: 4 << 20,
        }
    }
}

/// What one [`ShardEngine::ingest_archive`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIngestOutcome {
    /// Stats of the snapshots ingested *by this call*, in archive order.
    pub stats: Vec<ImportStats>,
    /// Snapshot files skipped because the manifest already lists them.
    pub resumed: usize,
    /// Cumulative archive-level quarantine accounting (all runs).
    pub quarantine: QuarantineReport,
}


/// What a rollback after a mid-ingest write failure did — the typed
/// post-mortem behind [`ShardEngine::last_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Date of the snapshot whose ingest failed.
    pub snapshot: String,
    /// The write error that triggered the rollback, as text.
    pub cause: String,
    /// In-flight rows discarded by rolling back to the last commit
    /// (they were never manifest-committed, and re-ingesting the same
    /// file reproduces them exactly).
    pub rows_rolled_back: u64,
    /// What the recovery replay dropped on disk, byte-exact.
    pub recovery: WalRecovery,
}

/// A [`ShardedStore`] bound to a state directory: every ingested row is
/// write-ahead logged to its shard, and completed snapshots commit via
/// the manifest.
#[derive(Debug)]
pub struct ShardEngine {
    config: ShardEngineConfig,
    state_dir: PathBuf,
    store: ShardedStore,
    wals: Vec<ShardWal>,
    completed: Vec<ImportStats>,
    quarantine: QuarantineReport,
    recovery: WalRecovery,
    discarded: Option<String>,
    vfs: Arc<dyn Vfs>,
    last_failure: Option<RecoveryReport>,
    poisoned: Option<String>,
}

impl ShardEngine {
    /// Open (or create) the engine state in `state_dir`, replaying the
    /// logs back into memory. Uses the real filesystem; the fault
    /// sweeps use [`ShardEngine::open_with_vfs`].
    pub fn open(state_dir: &Path, config: ShardEngineConfig) -> Result<Self, TsvError> {
        Self::open_with_vfs(state_dir, config, Arc::new(StdVfs))
    }

    /// [`ShardEngine::open`] with every durability-critical syscall —
    /// WAL appends, fsyncs, segment rotation, manifest tmp+rename —
    /// routed through `vfs`. Recovery *reads* stay on the real
    /// filesystem: replay must see whatever actually hit the disk.
    pub fn open_with_vfs(
        state_dir: &Path,
        config: ShardEngineConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, TsvError> {
        let config = ShardEngineConfig {
            shards: config.shards.max(1),
            ..config
        };
        fs::create_dir_all(state_dir)?;
        let shards = config.shards;
        let mut store = ShardedStore::new(shards);
        let mut completed: Vec<ImportStats> = Vec::new();
        let mut quarantine = QuarantineReport::default();
        let mut recovery = WalRecovery::default();
        let mut discarded: Option<String> = None;

        match ShardManifest::load(state_dir)? {
            ManifestState::Absent => {
                // Logs without a manifest never committed anything:
                // replaying against an empty completed-set truncates
                // them with exact accounting.
                let nothing = BTreeSet::new();
                for shard in 0..shards {
                    let replay = wal::replay_shard(&shard_dir(state_dir, shard), &nothing)?;
                    recovery.absorb(replay.recovery);
                }
                if !recovery.is_clean() {
                    discarded =
                        Some("no manifest: dropped logs of a never-committed run".to_owned());
                }
            }
            ManifestState::Damaged(reason) => {
                recovery.bytes_discarded += Self::wipe(state_dir, shards)?;
                recovery.details.push(reason.clone());
                discarded = Some(reason);
            }
            ManifestState::Loaded(manifest) => {
                if manifest.shards != shards
                    || manifest.policy != config.policy
                    || manifest.version != config.version
                {
                    return Err(TsvError::Checkpoint {
                        message: format!(
                            "shard state was written with shards={} policy={:?} version={} \
                             but reopened with shards={} policy={:?} version={}",
                            manifest.shards,
                            manifest.policy,
                            manifest.version,
                            shards,
                            config.policy,
                            config.version
                        ),
                    });
                }
                let dates = manifest.completed_dates();
                let expected: Vec<&str> =
                    manifest.completed.iter().map(|s| s.date.as_str()).collect();
                let mut broken: Option<String> = None;
                let mut max_seq: Option<u64> = None;
                'shards: for shard in 0..shards {
                    let replay = wal::replay_shard(&shard_dir(state_dir, shard), &dates)?;
                    let got: Vec<&str> =
                        replay.snapshots.iter().map(|s| s.date.as_str()).collect();
                    if got != expected {
                        broken = Some(format!(
                            "shard-{shard}: log holds committed snapshots {got:?} but the \
                             manifest promises {expected:?}"
                        ));
                        recovery.absorb(replay.recovery);
                        break 'shards;
                    }
                    for snapshot in &replay.snapshots {
                        for (seq, row) in &snapshot.rows {
                            store.shards_mut()[shard].apply(
                                *seq,
                                row,
                                config.policy,
                                &snapshot.date,
                                snapshot.version,
                            );
                            max_seq = Some(max_seq.map_or(*seq, |m| m.max(*seq)));
                        }
                    }
                    recovery.absorb(replay.recovery);
                }
                match broken {
                    None => {
                        if let Some(seq) = max_seq {
                            store.observe_replayed_seq(seq);
                        }
                        completed = manifest.completed;
                        quarantine = manifest.quarantine;
                    }
                    Some(reason) => {
                        // The manifest promised more than the logs can
                        // deliver — a partial replay would silently
                        // diverge from the committed history, so the
                        // whole state restarts from scratch.
                        recovery.bytes_discarded += Self::wipe(state_dir, shards)?;
                        recovery.details.push(reason.clone());
                        store = ShardedStore::new(shards);
                        discarded = Some(reason);
                    }
                }
            }
        }

        let mut wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            wals.push(ShardWal::open(
                &shard_dir(state_dir, shard),
                config.segment_bytes,
                Arc::clone(&vfs),
            )?);
        }
        Ok(ShardEngine {
            config,
            state_dir: state_dir.to_path_buf(),
            store,
            wals,
            completed,
            quarantine,
            recovery,
            discarded,
            vfs,
            last_failure: None,
            poisoned: None,
        })
    }

    /// Remove the manifest and every log segment, returning the bytes
    /// dropped. Directories stay in place for the fresh run.
    fn wipe(state_dir: &Path, shards: usize) -> Result<u64, TsvError> {
        let mut bytes = 0;
        for name in ["manifest.tsv", "manifest.tsv.tmp"] {
            let path = state_dir.join(name);
            if let Ok(meta) = fs::metadata(&path) {
                bytes += meta.len();
                fs::remove_file(&path)?;
            }
        }
        for shard in 0..shards {
            let dir = shard_dir(state_dir, shard);
            for (_, path) in wal::segments(&dir)? {
                bytes += fs::metadata(&path)?.len();
                fs::remove_file(&path)?;
            }
        }
        Ok(bytes)
    }

    fn manifest(&self) -> ShardManifest {
        ShardManifest {
            shards: self.config.shards,
            policy: self.config.policy,
            version: self.config.version,
            completed: self.completed.clone(),
            quarantine: self.quarantine.clone(),
        }
    }

    /// Ingest every snapshot file of `archive_dir` that the manifest
    /// does not already list, committing each one before moving on.
    ///
    /// Quarantine semantics match
    /// [`nc_core::tsv::import_archive_dir_with`] exactly (same budget
    /// accounting, carried across resumes via the manifest); the sink
    /// file, when configured, is truncated per call.
    pub fn ingest_archive(
        &mut self,
        archive_dir: &Path,
        options: &ImportOptions,
    ) -> Result<ShardIngestOutcome, TsvError> {
        if let Some(reason) = &self.poisoned {
            return Err(TsvError::Checkpoint {
                message: format!("engine is poisoned: {reason}"),
            });
        }
        if let Some(sink) = &options.quarantine_path {
            File::create(sink)?;
        }
        let done: BTreeSet<&str> = self.completed.iter().map(|s| s.date.as_str()).collect();
        let mut pending = Vec::new();
        let mut resumed = 0;
        for path in archive_files(archive_dir)? {
            let date = date_from_file_name(&path).ok_or_else(|| TsvError::BadFileName {
                file: path.clone(),
            })?;
            if done.contains(date.as_str()) {
                resumed += 1;
            } else {
                pending.push(path);
            }
        }

        let mut stats = Vec::new();
        for path in pending {
            match read_snapshot_budgeted(&path, options, self.quarantine.events())? {
                Some(parsed) => {
                    self.quarantine.lines_quarantined += parsed.quarantined;
                    if parsed.remapped {
                        self.quarantine.remapped_headers += 1;
                    }
                    let snap = parsed.snapshot;
                    match self.ingest_one(&snap, parsed.quarantined) {
                        Ok(total) => stats.push(total),
                        Err(err) => return Err(self.roll_back(&snap.date, err)),
                    }
                }
                None => {
                    self.quarantine.files_quarantined += 1;
                    if let Some(budget) = options.error_budget {
                        if self.quarantine.events() > budget {
                            return Err(TsvError::QuarantineBudget {
                                budget,
                                quarantined: self.quarantine.events(),
                            });
                        }
                    }
                }
            }
        }
        Ok(ShardIngestOutcome {
            stats,
            resumed,
            quarantine: self.quarantine.clone(),
        })
    }

    /// The write path of one parsed snapshot: WAL begin/rows/commit,
    /// rotation, then the manifest commit. Any error leaves memory and
    /// disk out of step — the caller must roll back.
    fn ingest_one(&mut self, snap: &Snapshot, quarantined: u64) -> Result<ImportStats, TsvError> {
        for wal in &mut self.wals {
            wal.begin_snapshot(&snap.date, self.config.version)?;
        }
        let start_seq = self.store.next_seq();
        let parts = ingest::fan_out(
            self.store.shards_mut(),
            Some(self.wals.as_mut_slice()),
            &snap.rows,
            &snap.date,
            self.config.policy,
            self.config.version,
            start_seq,
            self.config.channel_depth,
        )?;
        self.store.advance_seq(snap.rows.len() as u64);
        // Step 1 of the commit: durable C on every log.
        for (wal, part) in self.wals.iter_mut().zip(&parts) {
            wal.commit_snapshot(&snap.date, part.total_rows)?;
        }
        for wal in &mut self.wals {
            wal.maybe_rotate()?;
        }
        let mut total = ImportStats::zero(snap.date.clone());
        for part in &parts {
            total.merge(part);
        }
        total.quarantined = quarantined;
        self.quarantine
            .per_snapshot
            .push((total.date.clone(), quarantined));
        self.completed.push(total.clone());
        // Step 2: the manifest makes it official.
        self.manifest().save(&self.state_dir, self.vfs.as_ref())?;
        Ok(total)
    }

    /// Roll back after a failed write: reopen from disk — only
    /// manifest-committed state survives; the in-flight suffix is
    /// truncated with exact accounting — record a [`RecoveryReport`],
    /// and hand the original error back for propagation. When even the
    /// reopen fails, the engine poisons itself: every further ingest
    /// refuses deterministically rather than appending to logs of
    /// unknown integrity.
    fn roll_back(&mut self, date: &str, cause: TsvError) -> TsvError {
        let rows_before = self.store.rows_imported();
        match Self::open_with_vfs(&self.state_dir, self.config, Arc::clone(&self.vfs)) {
            Ok(mut fresh) => {
                let rows_after = fresh.store.rows_imported();
                fresh.last_failure = Some(RecoveryReport {
                    snapshot: date.to_owned(),
                    cause: cause.to_string(),
                    rows_rolled_back: rows_before.saturating_sub(rows_after),
                    recovery: fresh.recovery.clone(),
                });
                *self = fresh;
            }
            Err(reopen) => {
                self.poisoned = Some(format!(
                    "ingest of snapshot {date} failed ({cause}), and the recovery \
                     reopen failed too ({reopen})"
                ));
            }
        }
        cause
    }

    /// Materialize a versioned [`StoreSnapshot`] (incremental: only
    /// dirty shards rebuild; see [`ShardedStore::publish`]).
    pub fn publish(&mut self, version: u32) -> StoreSnapshot {
        self.store.publish(version)
    }

    /// Publish straight into an `nc-serve` registry, making the carved
    /// datasets of the new version available to HTTP clients.
    pub fn publish_into(
        &mut self,
        registry: &SnapshotRegistry,
        version: u32,
    ) -> Arc<ServeSnapshot> {
        registry.publish(ServeSnapshot::new(self.store.publish(version)))
    }

    /// [`ShardEngine::publish_into`] under supervision: the publish
    /// runs under `catch_unwind` and is retried with capped
    /// exponential backoff, so a transiently panicking registry path
    /// (a poisoned lock being recovered, a pathological scorer
    /// derivation) degrades to a delay instead of failing the whole
    /// ingest-and-publish pipeline.
    pub fn publish_into_supervised(
        &mut self,
        registry: &SnapshotRegistry,
        version: u32,
        retry: &RetryPolicy,
    ) -> Result<Arc<ServeSnapshot>, RetryExhausted> {
        let snapshot = self.store.publish(version);
        retry.run(|attempt| {
            let snapshot = snapshot.clone();
            panic::catch_unwind(AssertUnwindSafe(move || {
                registry.publish(ServeSnapshot::new(snapshot))
            }))
            .map_err(|payload| {
                let text = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                format!("publish attempt {attempt} panicked: {text}")
            })
        })
    }

    /// The in-memory sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Mutable access to the store (pure in-memory mutations bypass the
    /// WAL — meant for `finalize` and publish bookkeeping).
    pub fn store_mut(&mut self) -> &mut ShardedStore {
        &mut self.store
    }

    /// Stats of every committed snapshot, in ingest order.
    pub fn completed(&self) -> &[ImportStats] {
        &self.completed
    }

    /// What recovery replayed and dropped when this engine opened.
    pub fn recovery(&self) -> &WalRecovery {
        &self.recovery
    }

    /// Why the previous state was discarded at open, if it was.
    pub fn discarded(&self) -> Option<&str> {
        self.discarded.as_deref()
    }

    /// The post-mortem of the most recent mid-ingest rollback, if this
    /// engine is the product of one (see [`RecoveryReport`]).
    pub fn last_failure(&self) -> Option<&RecoveryReport> {
        self.last_failure.as_ref()
    }

    /// Why the engine refuses to ingest, when a rollback's recovery
    /// reopen itself failed.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Cumulative quarantine accounting across all runs.
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// The engine's fixed configuration.
    pub fn config(&self) -> &ShardEngineConfig {
        &self.config
    }
}
