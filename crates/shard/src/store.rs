//! The in-memory sharded store and its determinism contract.
//!
//! # Why merged iteration is deterministic
//!
//! The unsharded [`ClusterStore::cluster_ids`] sorts clusters by
//! `DocId`, and `DocId`s are assigned in insertion order, so the
//! unsharded order is *global founding order*: the order in which each
//! NCID was first seen. Sharding partitions whole clusters (the shard
//! key is the NCID), the reader assigns every row a global sequence
//! number before fan-out, and each per-shard channel is FIFO — so a
//! shard observes its subset of rows in exactly the relative order the
//! sequential importer would, and per-cluster dedup state evolves
//! identically. Recording the founding row's sequence number per
//! cluster and merging all shards by that number therefore reproduces
//! the unsharded founding order exactly (bit-identical downstream
//! scoring/customize/carving; see `tests/determinism.rs`).

use nc_core::cluster::{ClusterStore, RowOutcome};
use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_core::snapshot::StoreSnapshot;
use nc_docstore::collection::DocId;
use nc_votergen::schema::Row;
use nc_votergen::snapshot::Snapshot;

use crate::ingest;

/// Stable shard router: FNV-1a over the trimmed NCID bytes, mod
/// `shards`.
///
/// Hand-rolled rather than [`std::hash::DefaultHasher`] because WAL
/// replay in a *new* process must route every logged row to the shard
/// that logged it — std's hasher is randomly seeded per process and
/// makes no cross-version promises.
pub fn shard_of(ncid: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "a store has at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in ncid.trim().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One shard: a privately owned [`ClusterStore`] plus the founding
/// bookkeeping that makes merged iteration deterministic.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) store: ClusterStore,
    /// `(global row sequence number, NCID)` per founded cluster, in
    /// founding order — the merge key for [`ShardedStore::cluster_ids`].
    founded: Vec<(u64, String)>,
    /// Rows landed since the last materialization.
    dirty: bool,
    /// Cached materialized clusters (valid while `!dirty`).
    cache: Option<Vec<(u64, String, Vec<Row>)>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            store: ClusterStore::new(),
            founded: Vec::new(),
            dirty: false,
            cache: None,
        }
    }

    /// Import one row (with its global sequence number) into this
    /// shard. The caller guarantees the row's NCID routes here.
    pub(crate) fn apply(
        &mut self,
        seq: u64,
        row: &Row,
        policy: DedupPolicy,
        date: &str,
        version: u32,
    ) -> RowOutcome {
        let outcome = self.store.import_row_ref(row, policy, date, version);
        if outcome == RowOutcome::NewCluster {
            self.founded.push((seq, row.ncid().trim().to_owned()));
        }
        self.dirty = true;
        outcome
    }

    /// The shard's clusters in founding order, rebuilt only when rows
    /// landed since the last call (the incremental-publish fast path).
    fn materialize(&mut self) -> &[(u64, String, Vec<Row>)] {
        if self.dirty || self.cache.is_none() {
            let clusters = self
                .founded
                .iter()
                .map(|(seq, ncid)| (*seq, ncid.clone(), self.store.cluster_rows(ncid)))
                .collect();
            self.cache = Some(clusters);
            self.dirty = false;
        }
        self.cache.as_deref().expect("just built")
    }
}

/// Global address of a cluster inside a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedDocId {
    /// Index of the shard holding the cluster.
    pub shard: usize,
    /// The cluster's document id *within* that shard's store.
    pub doc: DocId,
}

/// A [`ClusterStore`] split into N hash-partitioned shards.
///
/// Pure in-memory — the WAL-backed, resumable variant is
/// [`crate::engine::ShardEngine`], which drives this store through the
/// same ingest path.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Shard>,
    /// Next global row sequence number (one per fanned-out row).
    next_seq: u64,
    /// Bounded-channel depth between the reader and each worker.
    channel_depth: usize,
}

impl ShardedStore {
    /// An empty store with `shards` partitions (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            next_seq: 0,
            channel_depth: 1024,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub(crate) fn advance_seq(&mut self, rows: u64) {
        self.next_seq += rows;
    }

    /// Raise the replay watermark: the next fanned-out row must get a
    /// sequence number above every replayed one.
    pub(crate) fn observe_replayed_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Ingest one snapshot across all shards in parallel, returning
    /// the merged [`ImportStats`] — bit-identical to what
    /// [`nc_core::import::import_snapshot`] reports on an unsharded
    /// store, because per-worker stats are associatively merged in
    /// shard order and every per-row outcome matches the sequential
    /// importer's.
    pub fn ingest_snapshot(
        &mut self,
        snapshot: &Snapshot,
        policy: DedupPolicy,
        version: u32,
    ) -> ImportStats {
        let parts = ingest::fan_out(
            &mut self.shards,
            None,
            &snapshot.rows,
            &snapshot.date,
            policy,
            version,
            self.next_seq,
            self.channel_depth,
        )
        .expect("in-memory ingest performs no IO");
        self.next_seq += snapshot.rows.len() as u64;
        let mut total = ImportStats::zero(snapshot.date.clone());
        for part in &parts {
            total.merge(part);
        }
        total
    }

    /// All clusters in *global founding order* — the same NCID order
    /// the unsharded [`ClusterStore::cluster_ids`] yields for the same
    /// row stream (see the module docs for the argument).
    pub fn cluster_ids(&self) -> Vec<(String, ShardedDocId)> {
        let mut merged: Vec<(u64, String, ShardedDocId)> = Vec::with_capacity(self.cluster_count());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            // Within a shard, founding order and DocId order coincide
            // (clusters are the only inserts); zip them to attach ids.
            let by_doc = shard.store.cluster_ids();
            debug_assert_eq!(by_doc.len(), shard.founded.len());
            for ((seq, ncid), (doc_ncid, doc)) in shard.founded.iter().zip(by_doc) {
                debug_assert_eq!(*ncid, doc_ncid, "founding order must match DocId order");
                merged.push((
                    *seq,
                    ncid.clone(),
                    ShardedDocId {
                        shard: shard_idx,
                        doc,
                    },
                ));
            }
        }
        merged.sort_by_key(|(seq, _, _)| *seq);
        merged.into_iter().map(|(_, ncid, id)| (ncid, id)).collect()
    }

    /// The rows of one cluster, routed to its shard.
    pub fn cluster_rows(&self, ncid: &str) -> Vec<Row> {
        self.shards[shard_of(ncid, self.shards.len())]
            .store
            .cluster_rows(ncid)
    }

    /// Total clusters across all shards.
    pub fn cluster_count(&self) -> usize {
        self.shards.iter().map(|s| s.store.cluster_count()).sum()
    }

    /// Total records kept across all shards.
    pub fn record_count(&self) -> u64 {
        self.shards.iter().map(|s| s.store.record_count()).sum()
    }

    /// Total rows ever offered for import (kept + dropped).
    pub fn rows_imported(&self) -> u64 {
        self.shards.iter().map(|s| s.store.rows_imported()).sum()
    }

    /// Indexes of the shards the next [`ShardedStore::publish`] must
    /// re-materialize (rows landed since their cached materialization).
    pub fn dirty_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.dirty || s.cache.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Finalize every shard's document metadata (see
    /// [`ClusterStore::finalize`]).
    pub fn finalize(&mut self) {
        for shard in &mut self.shards {
            shard.store.finalize();
        }
    }

    /// Materialize a [`StoreSnapshot`] pinned to `version`.
    ///
    /// Incremental: only dirty shards rebuild their cluster lists; the
    /// per-shard lists (already in founding order) are merged by
    /// global sequence number, so the snapshot's cluster order is
    /// identical to [`StoreSnapshot::capture`] on the unsharded twin.
    pub fn publish(&mut self, version: u32) -> StoreSnapshot {
        let mut merged: Vec<(u64, (String, Vec<Row>))> = Vec::with_capacity(self.cluster_count());
        for shard in &mut self.shards {
            for (seq, ncid, rows) in shard.materialize() {
                merged.push((*seq, (ncid.clone(), rows.clone())));
            }
        }
        merged.sort_by_key(|(seq, _)| *seq);
        StoreSnapshot::from_clusters(version, merged.into_iter().map(|(_, c)| c).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::import::import_snapshot;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::registry::Registry;
    use nc_votergen::snapshot::standard_calendar;

    fn snapshots(seed: u64, pop: usize, n: usize) -> Vec<Snapshot> {
        let mut reg = Registry::new(GeneratorConfig {
            seed,
            initial_population: pop,
            ..Default::default()
        });
        standard_calendar()
            .iter()
            .take(n)
            .map(|info| reg.generate_snapshot(info))
            .collect()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1, 2, 3, 8] {
            for ncid in ["AA1", "  AA1  ", "BX999", ""] {
                let s = shard_of(ncid, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ncid, shards), "routing must be pure");
            }
        }
        // Trimming is part of the key, matching the cluster key.
        assert_eq!(shard_of(" ZQ7 ", 8), shard_of("ZQ7", 8));
    }

    #[test]
    fn sharded_matches_unsharded_counts_stats_and_order() {
        let snaps = snapshots(41, 90, 3);
        let mut plain = ClusterStore::new();
        let mut plain_stats = Vec::new();
        for s in &snaps {
            plain_stats.push(import_snapshot(&mut plain, s, DedupPolicy::Trimmed, 1));
        }
        for shards in [1, 2, 3, 8] {
            let mut sharded = ShardedStore::new(shards);
            let stats: Vec<ImportStats> = snaps
                .iter()
                .map(|s| sharded.ingest_snapshot(s, DedupPolicy::Trimmed, 1))
                .collect();
            assert_eq!(stats, plain_stats, "shards={shards}");
            assert_eq!(sharded.cluster_count(), plain.cluster_count());
            assert_eq!(sharded.record_count(), plain.record_count());
            assert_eq!(sharded.rows_imported(), plain.rows_imported());
            let plain_ids: Vec<String> =
                plain.cluster_ids().into_iter().map(|(n, _)| n).collect();
            let sharded_ids: Vec<String> =
                sharded.cluster_ids().into_iter().map(|(n, _)| n).collect();
            assert_eq!(sharded_ids, plain_ids, "shards={shards}");
        }
    }

    #[test]
    fn publish_is_incremental_over_dirty_shards() {
        let snaps = snapshots(42, 60, 2);
        let mut sharded = ShardedStore::new(4);
        sharded.ingest_snapshot(&snaps[0], DedupPolicy::Trimmed, 1);
        assert!(!sharded.dirty_shards().is_empty());
        let v1 = sharded.publish(1);
        assert_eq!(v1.record_count(), sharded.record_count());
        assert!(
            sharded.dirty_shards().is_empty(),
            "publish cleans every shard"
        );
        // A second publish with no new rows reuses every cache.
        let v1_again = sharded.publish(1);
        assert_eq!(v1_again.clusters(), v1.clusters());

        sharded.ingest_snapshot(&snaps[1], DedupPolicy::Trimmed, 1);
        let dirty = sharded.dirty_shards();
        assert!(!dirty.is_empty());
        let v2 = sharded.publish(2);
        assert_eq!(v2.record_count(), sharded.record_count());
        assert_eq!(v2.cluster_count(), sharded.cluster_count());
    }

    #[test]
    fn cluster_rows_route_to_the_owning_shard() {
        let snaps = snapshots(43, 50, 1);
        let mut sharded = ShardedStore::new(3);
        sharded.ingest_snapshot(&snaps[0], DedupPolicy::Trimmed, 1);
        for (ncid, id) in sharded.cluster_ids() {
            assert_eq!(id.shard, shard_of(&ncid, 3));
            assert!(!sharded.cluster_rows(&ncid).is_empty());
        }
    }
}
