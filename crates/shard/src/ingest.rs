//! Parallel snapshot fan-out: one reader, one worker per shard.
//!
//! The reader walks the snapshot's rows in file order, stamps each row
//! with a global sequence number, routes it by [`crate::shard_of`] and
//! sends it down that shard's bounded channel. Each worker owns its
//! shard (and its WAL, when logging) exclusively for the duration of
//! the scope, so the hot path takes no locks; determinism follows from
//! the channels being FIFO and the dedup state being per-cluster (see
//! the [`crate::store`] module docs).

use std::io;

use nc_core::cluster::RowOutcome;
use nc_core::import::ImportStats;
use nc_core::record::DedupPolicy;
use nc_votergen::schema::Row;

use crate::store::{shard_of, Shard};
use crate::wal::ShardWal;

/// Route one row into its shard, logging it first when a WAL is
/// attached (log-before-apply; the manifest is the commit point, so a
/// logged-but-unapplied row is simply replayed or discarded later).
#[allow(clippy::too_many_arguments)]
fn apply_one(
    shard: &mut Shard,
    wal: Option<&mut ShardWal>,
    seq: u64,
    row: &Row,
    date: &str,
    policy: DedupPolicy,
    version: u32,
    stats: &mut ImportStats,
) -> io::Result<()> {
    if let Some(wal) = wal {
        wal.append_row(seq, row)?;
    }
    stats.total_rows += 1;
    match shard.apply(seq, row, policy, date, version) {
        RowOutcome::NewCluster => {
            stats.new_clusters += 1;
            stats.new_records += 1;
        }
        RowOutcome::NewRecord => stats.new_records += 1,
        RowOutcome::DuplicateDropped => {}
    }
    Ok(())
}

/// Fan a snapshot's rows out across `shards`, returning one
/// [`ImportStats`] per shard (in shard-index order).
///
/// Every row is offered — duplicates too, since they still mutate the
/// owning cluster's `rows_seen`/membership bookkeeping and must be
/// replayed identically from the WAL. `start_seq` is the global
/// sequence number of `rows[0]`; the caller advances its counter by
/// `rows.len()` afterwards.
///
/// Errors (only possible when WALs are attached) are reported
/// deterministically: workers fail independently, and the first error
/// in shard-index order wins.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fan_out(
    shards: &mut [Shard],
    wals: Option<&mut [ShardWal]>,
    rows: &[Row],
    date: &str,
    policy: DedupPolicy,
    version: u32,
    start_seq: u64,
    depth: usize,
) -> io::Result<Vec<ImportStats>> {
    let n = shards.len();
    let mut wal_slots: Vec<Option<&mut ShardWal>> = match wals {
        Some(wals) => {
            debug_assert_eq!(wals.len(), n, "one WAL per shard");
            wals.iter_mut().map(Some).collect()
        }
        None => (0..n).map(|_| None).collect(),
    };

    // Workers only pay off when there is real hardware parallelism;
    // with a single shard — or a single core — route inline instead.
    // Applying rows in global order is exactly the per-shard FIFO order
    // the channels would deliver, so the outcome is bit-identical.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if n == 1 || cores == 1 {
        let mut parts: Vec<ImportStats> =
            (0..n).map(|_| ImportStats::zero(date.to_owned())).collect();
        for (i, row) in rows.iter().enumerate() {
            let target = if n == 1 { 0 } else { shard_of(row.ncid(), n) };
            apply_one(
                &mut shards[target],
                wal_slots[target].as_deref_mut(),
                start_seq + i as u64,
                row,
                date,
                policy,
                version,
                &mut parts[target],
            )?;
        }
        return Ok(parts);
    }

    let mut results: Vec<io::Result<ImportStats>> = Vec::with_capacity(n);
    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (shard, mut wal) in shards.iter_mut().zip(wal_slots.drain(..)) {
            let (tx, rx) = crossbeam::channel::bounded::<(u64, &Row)>(depth.max(1));
            senders.push(tx);
            workers.push(scope.spawn(move |_| -> io::Result<ImportStats> {
                let mut stats = ImportStats::zero(date.to_owned());
                for (seq, row) in rx.iter() {
                    apply_one(
                        shard,
                        wal.as_deref_mut(),
                        seq,
                        row,
                        date,
                        policy,
                        version,
                        &mut stats,
                    )?;
                }
                Ok(stats)
            }));
        }

        for (i, row) in rows.iter().enumerate() {
            let target = shard_of(row.ncid(), n);
            if senders[target].send((start_seq + i as u64, row)).is_err() {
                // The worker hung up early — it hit a WAL write error.
                // Stop feeding; its Err surfaces at join below.
                break;
            }
        }
        drop(senders);

        for worker in workers {
            results.push(worker.join().expect("shard worker panicked"));
        }
    })
    .expect("ingest scope failed");

    // First error in shard-index order wins (deterministic reporting).
    let mut parts = Vec::with_capacity(n);
    for result in results {
        parts.push(result?);
    }
    Ok(parts)
}
