//! Sharded, WAL-backed cluster storage (the scale-out tier of the
//! paper's update process).
//!
//! The paper's pipeline ingests 40 snapshots totalling 506.7 M rows
//! into cluster-aggregated storage (Section 2, Tables 1–2). A single
//! in-memory [`nc_core::cluster::ClusterStore`] fed by a
//! single-threaded importer does not reach that scale, so this crate
//! splits the store into N shards keyed by `hash(NCID) % N`:
//!
//! * **Parallel ingest** ([`ingest`]): a reader fans a snapshot's rows
//!   out over bounded channels to per-shard workers. Each worker owns
//!   its shard exclusively — no locks on the hot path — and reuses
//!   [`nc_core::cluster::ClusterStore::import_row_ref`] and the
//!   quarantine-mode semantics of `nc_core::tsv`, so every per-row
//!   outcome is identical to the sequential importer's.
//! * **Write-ahead logging** ([`wal`]): each shard appends its rows to
//!   an append-only log using the CRC-32 line framing of
//!   [`nc_docstore::persist`], so applying snapshot k+1 appends deltas
//!   instead of rewriting the store. Segments rotate at a size bound,
//!   a manifest records completed snapshots (the commit point), and
//!   recovery salvages the intact prefix of a torn tail with exact
//!   loss reporting.
//! * **Deterministic merged iteration** ([`store`]):
//!   [`store::ShardedStore::cluster_ids`] yields clusters in global
//!   founding order — the same order the unsharded store yields — so
//!   scoring, customize and carving stay bit-identical under any shard
//!   count (asserted by proptest in `tests/determinism.rs`).
//! * **Incremental publish** ([`engine`]): after a snapshot lands,
//!   only dirty shards are re-materialized into the next
//!   [`nc_core::snapshot::StoreSnapshot`], which publishes straight
//!   into `nc-serve`'s snapshot registry.
//! * **Fault injection and rollback** ([`engine`], [`wal`]): every
//!   durability-critical syscall goes through an injected
//!   [`nc_vfs::Vfs`], so the syscall sweeps in `tests/syscall_sweep.rs`
//!   can crash the engine at *every* write/fsync/rename index and
//!   assert recovery lands on a committed state. Mid-ingest write
//!   failures roll the engine back to the last manifest commit with a
//!   typed [`engine::RecoveryReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub(crate) mod ingest;
pub mod store;
pub mod wal;

pub use engine::{RecoveryReport, ShardEngine, ShardEngineConfig, ShardIngestOutcome};
pub use store::{shard_of, ShardedDocId, ShardedStore};
pub use wal::{
    shard_log_dir, tail_group, ManifestState, ShardManifest, TailCursor, TailGroup, WalRecovery,
};
