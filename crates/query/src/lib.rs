//! Carve-by-query: compile a JSON query document into an executable,
//! index-aware carve plan over a published store snapshot.
//!
//! The paper's test-dataset generator hands users a MongoDB instance and
//! tells them to customize their dataset with aggregation pipelines —
//! "multi-stage pipelines can be used to transform documents into an
//! aggregated result". This crate brings that instrument to the serving
//! layer: instead of the fixed carve knobs (`clusters`, `min_size`,
//! `seed`), a client POSTs a typed JSON pipeline and gets a carve that
//! was *planned* — filtered through the catalog's secondary indexes —
//! rather than scanned.
//!
//! The flow is three layers, each independently testable:
//!
//! 1. **Parse + validate** ([`ast`], on top of the dependency-free JSON
//!    parser in [`json`]): a query document becomes a [`CarveQuery`] or
//!    a typed [`QueryError`] carrying the byte offset (JSON errors) or
//!    the stage index and field path (structure/validation errors).
//! 2. **Catalog** ([`catalog`]): one queryable [`Document`] per cluster
//!    — `ncid`, `size`, `het`, `plaus`, `snapshot.first/.last`, and the
//!    per-error-type counts under `errors.*` — with hash/ordered indexes
//!    over the selective fields.
//! 3. **Plan + execute** ([`exec`]): a leading `match` is pushed onto
//!    the collection's posting lists via `Collection::plan` (never a
//!    full scan when an index covers a conjunct); the remaining stages
//!    run through the docstore's own stage machinery, plus a seeded
//!    deterministic `sample` stage. [`Explain`] reports indexed vs
//!    scanned conjuncts and estimated vs actual rows.
//!
//! [`Document`]: nc_docstore::value::Document
//! [`CarveQuery`]: ast::CarveQuery
//! [`QueryError`]: ast::QueryError
//! [`Explain`]: exec::Explain

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod json;

pub use ast::{CarveQuery, QueryError, QueryErrorKind, QueryFootprint, QueryStage};
pub use catalog::{ClusterCatalog, FieldKind, ERROR_KINDS, SCHEMA};
pub use exec::{
    execute, execute_naive, plan_query, sample_docs, ExecOptions, Explain, OutputKind,
    QueryOutcome, StageTrace,
};
