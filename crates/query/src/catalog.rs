//! The per-snapshot cluster catalog: one queryable [`Document`] per
//! cluster, with secondary indexes over the scored fields.
//!
//! The catalog is what query pipelines actually run against. Each
//! cluster of a [`StoreSnapshot`] contributes one flat document of
//! *derived* facts — size, heterogeneity, plausibility, snapshot date
//! range, per-error-type difference counts — inserted in capture order,
//! so a catalog `_id` doubles as the cluster's position in
//! [`StoreSnapshot::clusters`]. Indexes over the selective fields give
//! the planner posting lists; the unindexed `errors.*` counts
//! deliberately exercise the residual-scan path.
//!
//! Heterogeneity depends on the snapshot-wide entropy weights, so a
//! catalog is valid only for the snapshot it was built from — the serve
//! layer caches one per published [`ServeSnapshot`] and rebuilds on
//! publish.

use nc_core::heterogeneity::HeterogeneityScorer;
use nc_core::plausibility::PlausibilityScorer;
use nc_core::snapshot::{ClusterFacts, StoreSnapshot};
use nc_docstore::collection::Collection;
use nc_docstore::index::IndexKind;
use nc_docstore::query::Filter;
use nc_docstore::value::Document;
use nc_similarity::damerau;
use nc_similarity::soundex::soundex;
use nc_similarity::with_thread_scratch;
use nc_votergen::schema::{Row, AGE, NCID, NUM_ATTRS, SNAPSHOT_DT};

/// Value type of a catalog field, for operand validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// String-valued field.
    Str,
    /// Integer-valued field.
    Int,
    /// Float-valued field.
    Float,
}

/// The error-count buckets derived per cluster, in render order. Each
/// mirrors one error class of the votergen injection engine (see
/// `nc-votergen::errors`); `other` collects differences no single-value
/// class explains (value confusions, scattered values, heavy edits).
pub const ERROR_KINDS: &[&str] = &[
    "typo",
    "ocr",
    "phonetic",
    "abbrev",
    "whitespace",
    "case",
    "outlier",
    "missing",
    "other",
];

/// Queryable catalog fields and their kinds. Validation rejects any
/// dotted path outside this set, so typos in query documents fail
/// loudly instead of matching nothing.
pub const SCHEMA: &[(&str, FieldKind)] = &[
    ("ncid", FieldKind::Str),
    ("size", FieldKind::Int),
    ("het", FieldKind::Float),
    ("plaus", FieldKind::Float),
    ("snapshot.first", FieldKind::Str),
    ("snapshot.last", FieldKind::Str),
    ("errors.typo", FieldKind::Int),
    ("errors.ocr", FieldKind::Int),
    ("errors.phonetic", FieldKind::Int),
    ("errors.abbrev", FieldKind::Int),
    ("errors.whitespace", FieldKind::Int),
    ("errors.case", FieldKind::Int),
    ("errors.outlier", FieldKind::Int),
    ("errors.missing", FieldKind::Int),
    ("errors.other", FieldKind::Int),
    ("errors.total", FieldKind::Int),
];

/// Look up a catalog field's kind.
pub fn field_kind(path: &str) -> Option<FieldKind> {
    SCHEMA
        .iter()
        .find(|(p, _)| *p == path)
        .map(|(_, k)| *k)
}

/// The indexed catalog paths (everything selective; `errors.*` counts
/// stay scan-only on purpose).
const INDEXES: &[(&str, IndexKind)] = &[
    ("ncid", IndexKind::Hash),
    ("size", IndexKind::Ordered),
    ("het", IndexKind::Ordered),
    ("plaus", IndexKind::Ordered),
    ("snapshot.first", IndexKind::Ordered),
    ("snapshot.last", IndexKind::Ordered),
];

/// One queryable document per cluster of a snapshot, with indexes.
#[derive(Debug)]
pub struct ClusterCatalog {
    collection: Collection,
    version: u32,
}

impl ClusterCatalog {
    /// Build the catalog for `snapshot`. The heterogeneity scorer must
    /// be the snapshot's own entropy scorer
    /// ([`StoreSnapshot::entropy_scorer`]); plausibility needs no
    /// snapshot state and is built internally.
    pub fn build(snapshot: &StoreSnapshot, heterogeneity: &HeterogeneityScorer) -> Self {
        let plausibility = PlausibilityScorer::new();
        let mut collection = Collection::new("clusters");
        // Index before inserting: Collection maintains indexes on every
        // insert, which is cheaper than a create_index rebuild pass over
        // an already-full collection.
        for (path, kind) in INDEXES {
            collection.create_index(*path, *kind);
        }
        with_thread_scratch(|scratch| {
            for (ncid, rows) in snapshot.clusters() {
                let facts =
                    ClusterFacts::compute_with(scratch, ncid, rows, heterogeneity, &plausibility);
                collection.insert(Self::doc_from_facts(&facts, rows));
            }
        });
        ClusterCatalog {
            collection,
            version: snapshot.version(),
        }
    }

    /// The catalog document for one cluster, independent of any built
    /// catalog. The serve layer uses this at publish time to test
    /// whether a founded or revised cluster matches a cached carve's
    /// predicate footprint under the *new* snapshot's scorer.
    pub fn cluster_doc(
        ncid: &str,
        rows: &[Row],
        heterogeneity: &HeterogeneityScorer,
        plausibility: &PlausibilityScorer,
    ) -> Document {
        let facts = ClusterFacts::compute(ncid, rows, heterogeneity, plausibility);
        Self::doc_from_facts(&facts, rows)
    }

    fn doc_from_facts(facts: &ClusterFacts, rows: &[Row]) -> Document {
        let mut doc = Document::new();
        doc.set("ncid", facts.ncid.as_str());
        doc.set("size", facts.size as i64);
        doc.set("het", facts.heterogeneity);
        doc.set("plaus", facts.plausibility);
        let mut snap = Document::new();
        snap.set("first", facts.first_snapshot.as_str());
        snap.set("last", facts.last_snapshot.as_str());
        doc.set("snapshot", snap);
        doc.set("errors", error_counts(rows));
        doc
    }

    /// The snapshot version this catalog was built from.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of cluster documents.
    pub fn len(&self) -> usize {
        self.collection.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.collection.is_empty()
    }

    /// The underlying collection (documents in capture order by `_id`).
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Whether the cluster with `ncid` matches `filter`. `None` when the
    /// catalog has no such cluster. Served by the hash index on `ncid`.
    pub fn cluster_matches(&self, ncid: &str, filter: &Filter) -> Option<bool> {
        self.collection
            .find_one(&Filter::eq("ncid", ncid))
            .map(|doc| filter.matches(doc))
    }
}

/// Classify the attribute-level differences between every record of a
/// cluster and its founding (first) record, bucketed by the votergen
/// error taxonomy. Differences on `ncid`/`snapshot_dt` are skipped —
/// those legitimately vary across re-registrations.
fn error_counts(rows: &[Row]) -> Document {
    let mut counts = [0i64; ERROR_KINDS.len()];
    if let Some((first, rest)) = rows.split_first() {
        for row in rest {
            for attr in 0..NUM_ATTRS {
                if attr == NCID || attr == SNAPSHOT_DT {
                    continue;
                }
                let a = first.get(attr);
                let b = row.get(attr);
                if a == b {
                    continue;
                }
                let kind = classify_difference(attr, a, b);
                let idx = ERROR_KINDS
                    .iter()
                    .position(|k| *k == kind)
                    .expect("classifier returns a known kind");
                counts[idx] += 1;
            }
        }
    }
    let mut doc = Document::new();
    let mut total = 0i64;
    for (kind, n) in ERROR_KINDS.iter().zip(counts) {
        doc.set(*kind, n);
        total += n;
    }
    doc.set("total", total);
    doc
}

/// Decide which error class best explains `a` (founding value) vs `b`
/// (later value) differing. Heuristic mirror of the injection engine:
/// the checks run from the most structurally specific class down to
/// edit-distance fallbacks, so e.g. a soundex-preserving rewrite counts
/// as `phonetic` even though its edit distance would also pass `typo`.
fn classify_difference(attr: usize, a: &str, b: &str) -> &'static str {
    if attr == AGE && is_outlier_age(a, b) {
        return "outlier";
    }
    let (ta, tb) = (a.trim(), b.trim());
    if ta.is_empty() || tb.is_empty() {
        return "missing";
    }
    if ta == tb {
        return "whitespace";
    }
    if ta.eq_ignore_ascii_case(tb) {
        return "case";
    }
    let (ua, ub) = (ta.to_ascii_uppercase(), tb.to_ascii_uppercase());
    if is_abbreviation(&ua, &ub) || is_abbreviation(&ub, &ua) {
        return "abbrev";
    }
    if is_ocr_confusion(&ua, &ub) {
        return "ocr";
    }
    if let (Some(sa), Some(sb)) = (soundex(&ua), soundex(&ub)) {
        if sa == sb {
            return "phonetic";
        }
    }
    if damerau::distance(&ua, &ub) <= 2 {
        return "typo";
    }
    "other"
}

/// One of the two ages falls outside the plausible human range while
/// the other does not — the signature of `make_outlier_age` (glued
/// ages like `5069`, sentinels like `0`/`999`).
fn is_outlier_age(a: &str, b: &str) -> bool {
    fn plausible(s: &str) -> Option<bool> {
        s.trim().parse::<i64>().ok().map(|v| (1..=110).contains(&v))
    }
    matches!(
        (plausible(a), plausible(b)),
        (Some(true), Some(false) | None) | (Some(false) | None, Some(true))
    )
}

/// `short` is a single-letter abbreviation of `long` (optionally with a
/// trailing period), the shape `abbreviate` produces.
fn is_abbreviation(short: &str, long: &str) -> bool {
    let stem = short.strip_suffix('.').unwrap_or(short);
    let mut chars = stem.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => long.len() > 1 && long.starts_with(c),
        _ => false,
    }
}

/// Visually confusable (letter, digit) pairs — kept in sync with the
/// injection engine's `OCR_PAIRS`.
const OCR_PAIRS: &[(char, char)] = &[
    ('O', '0'),
    ('I', '1'),
    ('L', '1'),
    ('S', '5'),
    ('B', '8'),
    ('Z', '2'),
    ('G', '6'),
    ('T', '7'),
];

/// Same length, and every differing position swaps a letter for its
/// confusable digit (either direction) — the shape `ocr_corrupt`
/// produces.
fn is_ocr_confusion(a: &str, b: &str) -> bool {
    if a.chars().count() != b.chars().count() {
        return false;
    }
    let mut any = false;
    for (ca, cb) in a.chars().zip(b.chars()) {
        if ca == cb {
            continue;
        }
        let confusable = OCR_PAIRS
            .iter()
            .any(|&(l, d)| (ca == l && cb == d) || (ca == d && cb == l));
        if !confusable {
            return false;
        }
        any = true;
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::heterogeneity::Scope;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME, SEX_CODE};

    fn row(ncid: &str, first: &str, last: &str, snap: &str, age: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(FIRST_NAME, first);
        r.set(MIDL_NAME, "ANN");
        r.set(LAST_NAME, last);
        r.set(SEX_CODE, "F");
        r.set(AGE, age);
        r.set(SNAPSHOT_DT, snap);
        r
    }

    fn snapshot() -> StoreSnapshot {
        StoreSnapshot::from_clusters(
            1,
            vec![
                (
                    "A1".into(),
                    vec![
                        row("A1", "MARY", "SMITH", "2008-01-01", "40"),
                        row("A1", "MARY", "SMYTH", "2010-05-06", "42"),
                    ],
                ),
                ("B2".into(), vec![row("B2", "CARL", "OXENDINE", "2009-03-04", "55")]),
                (
                    "C3".into(),
                    vec![
                        row("C3", "PAT", "JONES", "2008-01-01", "30"),
                        row("C3", "P.", "JONES", "2009-03-04", "31"),
                        row("C3", "PAT", "J0NE5", "2010-05-06", "32"),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn build_produces_one_doc_per_cluster_in_capture_order() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.version(), 1);
        let ids: Vec<(u64, String)> = cat
            .collection()
            .iter_ordered()
            .map(|(id, d)| (id, d.get_str("ncid").unwrap().to_owned()))
            .collect();
        assert_eq!(
            ids,
            vec![(0, "A1".into()), (1, "B2".into()), (2, "C3".into())]
        );
    }

    #[test]
    fn docs_carry_scored_fields_and_date_ranges() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        let a1 = cat.collection().find_one(&Filter::eq("ncid", "A1")).unwrap();
        assert_eq!(a1.get_i64("size"), Some(2));
        assert!(a1.get_f64("het").unwrap() > 0.0);
        assert!(a1.get_f64("plaus").unwrap() > 0.5);
        assert_eq!(a1.get_str("snapshot.first"), Some("2008-01-01"));
        assert_eq!(a1.get_str("snapshot.last"), Some("2010-05-06"));
        let b2 = cat.collection().find_one(&Filter::eq("ncid", "B2")).unwrap();
        assert_eq!(b2.get_i64("size"), Some(1));
        assert_eq!(b2.get_f64("plaus"), Some(1.0));
        assert_eq!(b2.get_i64("errors.total"), Some(0));
    }

    #[test]
    fn error_classification_buckets() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        // A1: SMITH→SMYTH keeps the soundex code (phonetic), ages differ
        // legitimately (typo bucket at distance ≤ 2 — not outlier).
        let a1 = cat.collection().find_one(&Filter::eq("ncid", "A1")).unwrap();
        assert_eq!(a1.get_i64("errors.phonetic"), Some(1));
        // C3: "P." abbreviates PAT; J0NE5 is an OCR confusion of JONES.
        let c3 = cat.collection().find_one(&Filter::eq("ncid", "C3")).unwrap();
        assert_eq!(c3.get_i64("errors.abbrev"), Some(1));
        assert_eq!(c3.get_i64("errors.ocr"), Some(1));
        assert!(c3.get_i64("errors.total").unwrap() >= 2);
    }

    #[test]
    fn classifier_unit_cases() {
        assert_eq!(classify_difference(FIRST_NAME, "MARY", " MARY "), "whitespace");
        assert_eq!(classify_difference(FIRST_NAME, "MARY", "mary"), "case");
        assert_eq!(classify_difference(FIRST_NAME, "MARY", ""), "missing");
        assert_eq!(classify_difference(FIRST_NAME, "MARY", "M"), "abbrev");
        assert_eq!(classify_difference(FIRST_NAME, "MARY", "M."), "abbrev");
        assert_eq!(classify_difference(FIRST_NAME, "MARY", "MARYX"), "typo");
        assert_eq!(classify_difference(LAST_NAME, "OXENDINE", "0XEND1NE"), "ocr");
        assert_eq!(classify_difference(AGE, "40", "5069"), "outlier");
        assert_eq!(classify_difference(AGE, "40", "999"), "outlier");
        assert_eq!(
            classify_difference(FIRST_NAME, "MARY", "ELIZABETH"),
            "other"
        );
    }

    #[test]
    fn selective_fields_are_indexed() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        let paths = cat.collection().indexed_paths();
        for (p, _) in INDEXES {
            assert!(paths.contains(p), "missing index on {p}");
        }
        // errors.* stays scan-only.
        assert!(!paths.iter().any(|p| p.starts_with("errors")));
        let plan = cat.collection().plan(&Filter::between("size", 2_i64, 3_i64));
        assert!(!plan.is_full_scan());
    }

    #[test]
    fn cluster_matches_uses_ncid_index() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        assert_eq!(
            cat.cluster_matches("A1", &Filter::gte("size", 2_i64)),
            Some(true)
        );
        assert_eq!(
            cat.cluster_matches("B2", &Filter::gte("size", 2_i64)),
            Some(false)
        );
        assert_eq!(cat.cluster_matches("ZZ", &Filter::True), None);
    }

    #[test]
    fn schema_covers_all_rendered_fields() {
        let snap = snapshot();
        let scorer = snap.entropy_scorer(Scope::Person);
        let cat = ClusterCatalog::build(&snap, &scorer);
        let doc = cat.collection().get(0).unwrap();
        for (path, kind) in SCHEMA {
            let v = doc.get_path(path).unwrap_or_else(|| panic!("{path} absent"));
            let ok = match kind {
                FieldKind::Str => v.as_str().is_some(),
                FieldKind::Int => v.as_i64().is_some(),
                FieldKind::Float => v.as_f64().is_some(),
            };
            assert!(ok, "{path} has wrong kind");
        }
        assert_eq!(field_kind("het"), Some(FieldKind::Float));
        assert_eq!(field_kind("nope"), None);
    }
}
