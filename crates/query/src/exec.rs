//! Planning and executing a [`CarveQuery`] over a [`ClusterCatalog`].
//!
//! A leading `match` stage is pushed onto the catalog collection's
//! indexes through [`Collection::plan`]: when any conjunct is indexed,
//! candidates come from posting-list intersection and the snapshot is
//! never fully scanned. Every other stage is delegated, one stage at a
//! time, to the docstore's own [`Stage::apply`], so planned execution is
//! equivalent to a naive [`Pipeline::run_docs`] by construction — the
//! only part the planner changes is how the first stage sources rows.
//! The `sample` stage (which docstore pipelines do not model) uses a
//! self-contained splitmix64 + Fisher–Yates shuffle, so the same
//! `(seed, query, version)` reproduces the same sample on every build.

use nc_docstore::pipeline::Pipeline;
use nc_docstore::plan::{ConjunctAccess, ConjunctDecision};
use nc_docstore::value::{Document, Value};

use crate::ast::{CarveQuery, QueryStage};
use crate::catalog::ClusterCatalog;

/// Execution knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Ignore indexes and scan every cluster document. The bench harness
    /// uses this to measure the indexed-vs-scan speedup; the equivalence
    /// suite uses it to check both paths produce identical bytes.
    pub force_scan: bool,
}

/// What the final stage stream contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Whole clusters — the carve renders labeled record lines.
    Clusters,
    /// Transformed documents (after `project`/`group`/`count`) — the
    /// carve renders one JSON document per line.
    Docs,
}

impl OutputKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            OutputKind::Clusters => "clusters",
            OutputKind::Docs => "docs",
        }
    }
}

/// Per-stage row accounting for the explain report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTrace {
    /// Stage name.
    pub stage: &'static str,
    /// Rows flowing out of the stage; `None` when the plan was not
    /// executed (`/carve/explain`).
    pub rows_out: Option<usize>,
}

/// The query plan report: how the leading conjuncts were accessed,
/// estimated vs actual row counts, and per-stage row flow.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Snapshot version the plan targets.
    pub version: u32,
    /// Clusters in the snapshot.
    pub total_clusters: usize,
    /// Whether index use was disabled by [`ExecOptions::force_scan`].
    pub forced_scan: bool,
    /// Whether execution reads every cluster document (no indexed
    /// conjunct, no leading match, or a forced scan).
    pub full_scan: bool,
    /// Rows the index layer expects the leading match to touch (posting
    /// intersection size), before residual filtering.
    pub estimated_rows: usize,
    /// Rows the leading match actually produced; `None` when the plan
    /// was not executed.
    pub actual_rows: Option<usize>,
    /// Per-conjunct access decisions for the leading match.
    pub decisions: Vec<ConjunctDecision>,
    /// Per-stage row flow.
    pub stages: Vec<StageTrace>,
    /// What the final stream contains.
    pub output: OutputKind,
}

impl Explain {
    /// Leading-match conjuncts served by an index.
    pub fn indexed_conjuncts(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_indexed()).count()
    }

    /// Leading-match conjuncts that fall back to residual scan.
    pub fn scanned_conjuncts(&self) -> usize {
        self.decisions.len() - self.indexed_conjuncts()
    }

    /// Render as a JSON object (canonical sorted-key form).
    pub fn render_json(&self) -> String {
        let mut doc = Document::new();
        doc.set("version", i64::from(self.version));
        doc.set("total_clusters", self.total_clusters as i64);
        doc.set("forced_scan", self.forced_scan);
        doc.set("full_scan", self.full_scan);
        doc.set("estimated_rows", self.estimated_rows as i64);
        if let Some(n) = self.actual_rows {
            doc.set("actual_rows", n as i64);
        }
        doc.set("indexed_conjuncts", self.indexed_conjuncts() as i64);
        doc.set("scanned_conjuncts", self.scanned_conjuncts() as i64);
        let conjuncts: Vec<Value> = self
            .decisions
            .iter()
            .map(|d| {
                let mut c = Document::new();
                c.set("conjunct", d.conjunct.as_str());
                if let Some(p) = &d.path {
                    c.set("path", p.as_str());
                }
                match &d.access {
                    ConjunctAccess::IndexedEq { postings } => {
                        c.set("access", "indexed-eq");
                        c.set("postings", *postings as i64);
                    }
                    ConjunctAccess::IndexedRange { postings } => {
                        c.set("access", "indexed-range");
                        c.set("postings", *postings as i64);
                    }
                    ConjunctAccess::Scanned(reason) => {
                        c.set("access", "scan");
                        c.set("reason", reason.label());
                    }
                }
                Value::Doc(c)
            })
            .collect();
        doc.set("conjuncts", Value::Array(conjuncts));
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|t| {
                let mut s = Document::new();
                s.set("stage", t.stage);
                if let Some(n) = t.rows_out {
                    s.set("rows_out", n as i64);
                }
                Value::Doc(s)
            })
            .collect();
        doc.set("stages", Value::Array(stages));
        doc.set("output", self.output.label());
        doc.to_json()
    }
}

/// The result of executing a carve query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// NCIDs matching the query's combined match predicate, sorted.
    /// This is the matched-set half of the cache footprint: a later
    /// publish revising any of these clusters invalidates the carve.
    pub matched: Vec<String>,
    /// Capture positions (snapshot cluster indexes) of the final
    /// clusters, in output order. `None` when the output is documents.
    pub positions: Option<Vec<usize>>,
    /// The final document stream (cluster docs, or transformed docs).
    pub docs: Vec<Document>,
    /// The plan report with actual row counts filled in.
    pub explain: Explain,
}

/// What the final stream of `stages` contains, without executing.
pub fn output_kind(stages: &[QueryStage]) -> OutputKind {
    let transforms = stages.iter().any(|s| {
        matches!(
            s,
            QueryStage::Project(_) | QueryStage::Group { .. } | QueryStage::Count
        )
    });
    if transforms {
        OutputKind::Docs
    } else {
        OutputKind::Clusters
    }
}

fn base_explain(catalog: &ClusterCatalog, query: &CarveQuery, opts: ExecOptions) -> Explain {
    let coll = catalog.collection();
    let total = coll.len();
    let mut decisions = Vec::new();
    let mut estimated = total;
    let mut full_scan = true;
    if let Some(QueryStage::Match(f)) = query.stages.first() {
        let plan = coll.plan(f);
        estimated = if opts.force_scan {
            total
        } else {
            plan.estimated_rows(total)
        };
        full_scan = opts.force_scan || plan.is_full_scan();
        decisions = plan.decisions;
    }
    Explain {
        version: catalog.version(),
        total_clusters: total,
        forced_scan: opts.force_scan,
        full_scan,
        estimated_rows: estimated,
        actual_rows: None,
        decisions,
        stages: query
            .stages
            .iter()
            .map(|s| StageTrace {
                stage: s.name(),
                rows_out: None,
            })
            .collect(),
        output: output_kind(&query.stages),
    }
}

/// Produce the plan report without executing (`POST /carve/explain`).
pub fn plan_query(catalog: &ClusterCatalog, query: &CarveQuery, opts: ExecOptions) -> Explain {
    base_explain(catalog, query, opts)
}

/// Execute the query over the catalog.
pub fn execute(catalog: &ClusterCatalog, query: &CarveQuery, opts: ExecOptions) -> QueryOutcome {
    let coll = catalog.collection();
    let mut explain = base_explain(catalog, query, opts);

    // Source the initial stream: a leading match goes through the
    // planner (posting-list intersection + residual filter) unless the
    // caller forced a scan; anything else starts from every cluster doc.
    let (mut docs, rest): (Vec<Document>, &[QueryStage]) = match query.stages.split_first() {
        Some((QueryStage::Match(f), rest)) => {
            let docs: Vec<Document> = if opts.force_scan {
                coll.iter_ordered()
                    .map(|(_, d)| d.clone())
                    .filter(|d| f.matches(d))
                    .collect()
            } else {
                coll.find(f).into_iter().cloned().collect()
            };
            (docs, rest)
        }
        _ => (
            coll.iter_ordered().map(|(_, d)| d.clone()).collect(),
            &query.stages[..],
        ),
    };
    let had_leading_match = rest.len() != query.stages.len();
    if had_leading_match {
        explain.actual_rows = Some(docs.len());
        explain.stages[0].rows_out = Some(docs.len());
    } else {
        explain.actual_rows = Some(docs.len());
    }

    // When the only match stage is the leading one, the footprint filter
    // is exactly that filter and `docs` already holds every admitted
    // cluster — record the matched set now instead of re-running the
    // index intersection + residual filter after the pipeline.
    let single_leading_match = had_leading_match
        && !rest.iter().any(|s| matches!(s, QueryStage::Match(_)));
    let matched_early: Option<Vec<String>> = single_leading_match.then(|| {
        docs.iter()
            .filter_map(|d| d.get("ncid").and_then(Value::as_str).map(str::to_owned))
            .collect()
    });

    let trace_offset = if had_leading_match { 1 } else { 0 };
    for (i, stage) in rest.iter().enumerate() {
        docs = match stage {
            QueryStage::Sample { size, seed, by } => {
                sample_docs(docs, *size, *seed, by.as_deref())
            }
            other => other
                .to_docstore_stage()
                .expect("only sample lacks a docstore stage")
                .apply(docs),
        };
        explain.stages[trace_offset + i].rows_out = Some(docs.len());
    }

    // The matched set for the cache footprint: every cluster the
    // recorded footprint admits (not just the sampled survivors). A
    // `None` filter (no match stage, or a match over a transformed
    // stream) records the full snapshot.
    let footprint = query.footprint();
    let mut matched: Vec<String> = match matched_early {
        Some(m) => m,
        None => match &footprint.filter {
            Some(f) => coll
                .find(f)
                .into_iter()
                .filter_map(|d| d.get("ncid").and_then(Value::as_str).map(str::to_owned))
                .collect(),
            None => coll
                .iter_ordered()
                .filter_map(|(_, d)| d.get("ncid").and_then(Value::as_str).map(str::to_owned))
                .collect(),
        },
    };
    matched.sort_unstable();

    let positions = match explain.output {
        OutputKind::Clusters => Some(
            docs.iter()
                .filter_map(|d| match d.get("_id") {
                    Some(Value::Int(i)) if *i >= 0 => Some(*i as usize),
                    _ => None,
                })
                .collect(),
        ),
        OutputKind::Docs => None,
    };

    QueryOutcome {
        matched,
        positions,
        docs,
        explain,
    }
}

/// The naive reference execution: every cluster doc through
/// [`Pipeline::run_docs`], with `sample` applied by the same sampler.
/// The equivalence suite asserts [`execute`] matches this byte for byte.
pub fn execute_naive(catalog: &ClusterCatalog, query: &CarveQuery) -> Vec<Document> {
    let mut docs: Vec<Document> = catalog
        .collection()
        .iter_ordered()
        .map(|(_, d)| d.clone())
        .collect();
    for stage in &query.stages {
        docs = match stage {
            QueryStage::Sample { size, seed, by } => {
                sample_docs(docs, *size, *seed, by.as_deref())
            }
            other => {
                let ds = other
                    .to_docstore_stage()
                    .expect("only sample lacks a docstore stage");
                Pipeline::from_stages(vec![ds]).run_docs(docs)
            }
        };
    }
    docs
}

/// Seeded deterministic sampling. Keeps up to `size` documents (per
/// stratum when `by` is set), preserving the incoming stream order of
/// the survivors. Uses splitmix64 + a partial Fisher–Yates shuffle, so
/// the sample depends only on `(seed, stream length, strata)` — never
/// on platform RNGs, making carves reproducible across builds.
pub fn sample_docs(docs: Vec<Document>, size: usize, seed: u64, by: Option<&str>) -> Vec<Document> {
    match by {
        None => {
            let keep = choose(docs.len(), size, seed);
            take_indices(docs, keep)
        }
        Some(path) => {
            // Strata in first-occurrence order; each stratum draws from
            // its own seeded stream so adding one stratum never perturbs
            // another's picks.
            let mut strata: Vec<(u64, Vec<usize>)> = Vec::new();
            for (i, doc) in docs.iter().enumerate() {
                let key = doc
                    .get_path(path)
                    .map(Value::stable_hash)
                    .unwrap_or(u64::MAX);
                match strata.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(i),
                    None => strata.push((key, vec![i])),
                }
            }
            let mut keep: Vec<usize> = Vec::new();
            for (key, members) in &strata {
                let stratum_seed = seed ^ key.rotate_left(17);
                for pick in choose(members.len(), size, stratum_seed) {
                    keep.push(members[pick]);
                }
            }
            keep.sort_unstable();
            take_indices(docs, keep)
        }
    }
}

/// `k` distinct indices from `0..n`, ascending, via partial
/// Fisher–Yates over a splitmix64 stream.
fn choose(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x6C62_272E_07BB_0142;
    for i in 0..k {
        // Modulo bias is irrelevant here: the draw only needs to be
        // deterministic and well-spread, not cryptographically uniform.
        let j = i + (splitmix64(&mut state) as usize) % (n - i);
        idx.swap(i, j);
    }
    let mut keep = idx[..k].to_vec();
    keep.sort_unstable();
    keep
}

fn take_indices(docs: Vec<Document>, keep: Vec<usize>) -> Vec<Document> {
    let mut slots: Vec<Option<Document>> = docs.into_iter().map(Some).collect();
    keep.into_iter()
        .filter_map(|i| slots.get_mut(i).and_then(Option::take))
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CarveQuery;
    use nc_core::heterogeneity::Scope;
    use nc_core::snapshot::StoreSnapshot;
    use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID, SNAPSHOT_DT};

    fn row(ncid: &str, first: &str, last: &str, snap: &str) -> Row {
        let mut r = Row::empty();
        r.set(NCID, ncid);
        r.set(FIRST_NAME, first);
        r.set(LAST_NAME, last);
        r.set(SNAPSHOT_DT, snap);
        r
    }

    fn catalog(n: usize) -> ClusterCatalog {
        let mut clusters = Vec::new();
        for i in 0..n {
            let ncid = format!("C{i:04}");
            let mut rows = vec![row(&ncid, "ANNA", "SMITH", "2020-01-01")];
            // Every third cluster gets a second record (size 2).
            if i % 3 == 0 {
                rows.push(row(&ncid, "ANNA", "SMYTH", "2021-01-01"));
            }
            clusters.push((ncid, rows));
        }
        let snapshot = StoreSnapshot::from_clusters(7, clusters);
        let het = snapshot.entropy_scorer(Scope::Person);
        ClusterCatalog::build(&snapshot, &het)
    }

    #[test]
    fn indexed_match_is_not_a_full_scan() {
        let cat = catalog(30);
        let q = CarveQuery::parse(
            br#"{"pipeline": [{"match": {"size": {"gte": 2}}}, {"limit": 5}]}"#,
        )
        .unwrap();
        let out = execute(&cat, &q, ExecOptions::default());
        assert!(!out.explain.full_scan);
        assert_eq!(out.explain.indexed_conjuncts(), 1);
        assert_eq!(out.explain.actual_rows, Some(10));
        assert_eq!(out.docs.len(), 5);
        let positions = out.positions.as_deref().unwrap();
        assert_eq!(positions, &[0, 3, 6, 9, 12]);
        // Matched set covers every admitted cluster, not just the limit.
        assert_eq!(out.matched.len(), 10);
    }

    #[test]
    fn forced_scan_matches_indexed_results() {
        let cat = catalog(40);
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"match": {"size": {"gte": 2}}},
                {"sort": {"by": "ncid", "descending": true}},
                {"sample": {"size": 4, "seed": 9}}
            ]}"#,
        )
        .unwrap();
        let fast = execute(&cat, &q, ExecOptions::default());
        let slow = execute(&cat, &q, ExecOptions { force_scan: true });
        assert!(!fast.explain.full_scan);
        assert!(slow.explain.full_scan);
        let fast_json: Vec<String> = fast.docs.iter().map(Document::to_json).collect();
        let slow_json: Vec<String> = slow.docs.iter().map(Document::to_json).collect();
        assert_eq!(fast_json, slow_json);
        assert_eq!(fast.positions, slow.positions);
    }

    #[test]
    fn execute_matches_naive_pipeline() {
        let cat = catalog(25);
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"match": {"size": {"gte": 1}}},
                {"group": {"by": "size", "agg": {"n": "count", "avg_het": {"avg": "het"}}}},
                {"sort": {"by": "n", "descending": true}}
            ]}"#,
        )
        .unwrap();
        let planned = execute(&cat, &q, ExecOptions::default());
        let naive = execute_naive(&cat, &q);
        assert_eq!(planned.explain.output, OutputKind::Docs);
        assert!(planned.positions.is_none());
        let a: Vec<String> = planned.docs.iter().map(Document::to_json).collect();
        let b: Vec<String> = naive.iter().map(Document::to_json).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_is_deterministic_and_order_preserving() {
        let cat = catalog(50);
        let q = CarveQuery::parse(br#"{"pipeline": [{"sample": {"size": 10, "seed": 123}}]}"#)
            .unwrap();
        let a = execute(&cat, &q, ExecOptions::default());
        let b = execute(&cat, &q, ExecOptions::default());
        assert_eq!(a.positions, b.positions);
        let pos = a.positions.unwrap();
        assert_eq!(pos.len(), 10);
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        assert_eq!(pos, sorted, "sample preserves stream order");

        let q2 = CarveQuery::parse(br#"{"pipeline": [{"sample": {"size": 10, "seed": 124}}]}"#)
            .unwrap();
        let c = execute(&cat, &q2, ExecOptions::default());
        assert_ne!(b.positions, c.positions, "different seed, different sample");
    }

    #[test]
    fn stratified_sample_caps_each_stratum() {
        let cat = catalog(30);
        let q = CarveQuery::parse(
            br#"{"pipeline": [{"sample": {"size": 3, "seed": 5, "by": "size"}}]}"#,
        )
        .unwrap();
        let out = execute(&cat, &q, ExecOptions::default());
        // Two strata (size 1 and size 2), up to 3 each.
        assert_eq!(out.docs.len(), 6);
        let mut by_size = std::collections::HashMap::new();
        for d in &out.docs {
            let Some(Value::Int(s)) = d.get("size") else {
                panic!()
            };
            *by_size.entry(*s).or_insert(0usize) += 1;
        }
        assert_eq!(by_size.get(&1), Some(&3));
        assert_eq!(by_size.get(&2), Some(&3));
    }

    #[test]
    fn explain_renders_decisions_and_stages() {
        let cat = catalog(10);
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"match": {"size": {"gte": 2}, "errors.typo": {"gte": 0}}},
                {"count": true}
            ]}"#,
        )
        .unwrap();
        let plan = plan_query(&cat, &q, ExecOptions::default());
        assert_eq!(plan.indexed_conjuncts(), 1);
        assert_eq!(plan.scanned_conjuncts(), 1);
        assert!(!plan.full_scan);
        assert_eq!(plan.actual_rows, None);
        let json = plan.render_json();
        assert!(json.contains("\"access\":\"indexed-range\""), "{json}");
        assert!(json.contains("\"access\":\"scan\""), "{json}");
        assert!(json.contains("\"reason\":\"no-index\""), "{json}");
        assert!(json.contains("\"output\":\"docs\""), "{json}");

        let out = execute(&cat, &q, ExecOptions::default());
        assert_eq!(out.docs.len(), 1);
        assert_eq!(out.docs[0].get("count"), Some(&Value::Int(4)));
        let json = out.explain.render_json();
        assert!(json.contains("\"actual_rows\":4"), "{json}");
    }

    #[test]
    fn no_leading_match_scans_everything() {
        let cat = catalog(8);
        let q = CarveQuery::parse(br#"{"pipeline": [{"limit": 3}]}"#).unwrap();
        let out = execute(&cat, &q, ExecOptions::default());
        assert!(out.explain.full_scan);
        assert_eq!(out.explain.estimated_rows, 8);
        assert_eq!(out.matched.len(), 8, "footprint covers the snapshot");
        assert_eq!(out.positions.as_deref(), Some(&[0usize, 1, 2][..]));
    }
}
