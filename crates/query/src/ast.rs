//! The typed query AST: parsing a JSON query document into
//! [`CarveQuery`], validating it against the catalog schema, and
//! rendering the canonical fingerprint text.
//!
//! A query document looks like:
//!
//! ```json
//! {
//!   "version": 3,
//!   "pipeline": [
//!     {"match": {"size": {"gte": 2, "lte": 10}, "errors.typo": {"gt": 0}}},
//!     {"sort": {"by": "het", "descending": true}},
//!     {"sample": {"size": 100, "seed": 42, "by": "size"}},
//!     {"limit": 50}
//!   ]
//! }
//! ```
//!
//! Parsing is structural (stage shapes, operand types); validation then
//! checks every dotted path against [`crate::catalog::SCHEMA`] and every
//! operand against the field's kind, so a typo like `"hetero"` fails
//! with a typed, stage-indexed error instead of matching nothing.

use nc_docstore::pipeline::{Accumulator, Stage};
use nc_docstore::query::Filter;
use nc_docstore::value::{Document, Value};

use crate::catalog::{field_kind, FieldKind};
use crate::json::{self, JsonError};

/// Error classes a query request can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryErrorKind {
    /// The body is not well-formed JSON (`offset` is set).
    Json,
    /// The JSON is well-formed but not a valid query document shape.
    Structure,
    /// The query references unknown fields or ill-typed operands.
    Validation,
    /// The query pins a snapshot version that is not being served.
    UnknownVersion,
}

impl QueryErrorKind {
    /// Stable lowercase label used in error bodies.
    pub fn label(self) -> &'static str {
        match self {
            QueryErrorKind::Json => "json",
            QueryErrorKind::Structure => "structure",
            QueryErrorKind::Validation => "validation",
            QueryErrorKind::UnknownVersion => "unknown-version",
        }
    }
}

/// A typed, position-carrying query error. `POST /carve` renders this
/// as the JSON body of a 400 response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// Error class.
    pub kind: QueryErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the request body (JSON syntax errors).
    pub offset: Option<usize>,
    /// Index of the offending pipeline stage.
    pub stage: Option<usize>,
    /// The dotted field path involved.
    pub path: Option<String>,
}

impl QueryError {
    fn structure(message: impl Into<String>) -> Self {
        QueryError {
            kind: QueryErrorKind::Structure,
            message: message.into(),
            offset: None,
            stage: None,
            path: None,
        }
    }

    fn at_stage(stage: usize, message: impl Into<String>) -> Self {
        QueryError {
            stage: Some(stage),
            ..Self::structure(message)
        }
    }

    fn validation(stage: usize, path: impl Into<String>, message: impl Into<String>) -> Self {
        QueryError {
            kind: QueryErrorKind::Validation,
            message: message.into(),
            offset: None,
            stage: Some(stage),
            path: Some(path.into()),
        }
    }

    /// An unknown-version error (raised by the serve layer when the
    /// pinned snapshot is not in the registry).
    pub fn unknown_version(version: u32) -> Self {
        QueryError {
            kind: QueryErrorKind::UnknownVersion,
            message: format!("version {version} not available"),
            offset: None,
            stage: None,
            path: None,
        }
    }

    /// Render as the JSON error body:
    /// `{"error":{"kind":"...","message":"...","offset":N,"stage":N,"path":"..."}}`
    /// (absent positions are omitted).
    pub fn render_json(&self) -> String {
        let mut inner = Document::new();
        inner.set("kind", self.kind.label());
        inner.set("message", self.message.as_str());
        if let Some(o) = self.offset {
            inner.set("offset", o as i64);
        }
        if let Some(s) = self.stage {
            inner.set("stage", s as i64);
        }
        if let Some(p) = &self.path {
            inner.set("path", p.as_str());
        }
        let mut body = Document::new();
        body.set("error", inner);
        body.to_json()
    }
}

impl From<JsonError> for QueryError {
    fn from(e: JsonError) -> Self {
        QueryError {
            kind: QueryErrorKind::Json,
            message: e.message,
            offset: Some(e.offset),
            stage: None,
            path: None,
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)?;
        if let Some(s) = self.stage {
            write!(f, " (stage {s})")?;
        }
        if let Some(p) = &self.path {
            write!(f, " (path {p})")?;
        }
        if let Some(o) = self.offset {
            write!(f, " (byte {o})")?;
        }
        Ok(())
    }
}

/// One pipeline stage of a carve query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryStage {
    /// Keep clusters matching the filter.
    Match(Filter),
    /// Seeded deterministic sample of the current stream.
    Sample {
        /// Number of clusters to keep (per stratum when `by` is set).
        size: usize,
        /// Sampling seed; the same seed always reproduces the sample.
        seed: u64,
        /// Stratify by this path: take up to `size` clusters per
        /// distinct value instead of `size` overall.
        by: Option<String>,
    },
    /// Sort by a path.
    Sort {
        /// Sorting path.
        by: String,
        /// Descending instead of ascending.
        descending: bool,
    },
    /// Keep only the listed paths (switches output to document lines).
    Project(Vec<String>),
    /// Group by a path with named accumulators (document output).
    Group {
        /// Grouping path.
        by: String,
        /// `(output field, accumulator)` pairs in canonical (sorted
        /// field-name) order.
        accumulators: Vec<(String, Accumulator)>,
    },
    /// Skip the first `n` clusters.
    Skip(usize),
    /// Keep at most `n` clusters.
    Limit(usize),
    /// Replace the stream by one `{count: n}` document.
    Count,
}

impl QueryStage {
    /// Lowercase stage name (for explain traces and canonical text).
    pub fn name(&self) -> &'static str {
        match self {
            QueryStage::Match(_) => "match",
            QueryStage::Sample { .. } => "sample",
            QueryStage::Sort { .. } => "sort",
            QueryStage::Project(_) => "project",
            QueryStage::Group { .. } => "group",
            QueryStage::Skip(_) => "skip",
            QueryStage::Limit(_) => "limit",
            QueryStage::Count => "count",
        }
    }

    /// The equivalent docstore pipeline stage, for every stage except
    /// `sample` (which docstore pipelines do not model).
    pub fn to_docstore_stage(&self) -> Option<Stage> {
        match self {
            QueryStage::Match(f) => Some(Stage::Match(f.clone())),
            QueryStage::Sample { .. } => None,
            QueryStage::Sort { by, descending } => Some(Stage::Sort {
                by: by.clone(),
                descending: *descending,
            }),
            QueryStage::Project(paths) => Some(Stage::Project(paths.clone())),
            QueryStage::Group { by, accumulators } => Some(Stage::Group {
                by: by.clone(),
                accumulators: accumulators.clone(),
            }),
            QueryStage::Skip(n) => Some(Stage::Skip(*n)),
            QueryStage::Limit(n) => Some(Stage::Limit(*n)),
            QueryStage::Count => Some(Stage::Count),
        }
    }
}

/// A parsed, validated carve query.
#[derive(Debug, Clone, PartialEq)]
pub struct CarveQuery {
    /// Snapshot version to carve from (`None` = current).
    pub version: Option<u32>,
    /// The pipeline stages, in order.
    pub stages: Vec<QueryStage>,
}

/// The predicate footprint a cached query carve records, used by the
/// publish-time carry-forward decision (see `nc-serve`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFootprint {
    /// Conjunction of every `match` stage's filter; `None` when the
    /// query has no match stage (matches everything).
    pub filter: Option<Filter>,
    /// Whether any stage reads the `het` field. Heterogeneity is scored
    /// against snapshot-wide entropy weights, so *founding* any cluster
    /// shifts every cluster's score — a scorer-dependent carve cannot
    /// survive a publish that founds clusters, even non-matching ones.
    pub scorer_dependent: bool,
}

impl QueryFootprint {
    /// Whether a cluster doc (from the *new* snapshot's catalog)
    /// matches the recorded predicate.
    pub fn matches(&self, doc: &Document) -> bool {
        self.filter.as_ref().is_none_or(|f| f.matches(doc))
    }
}

impl CarveQuery {
    /// Parse and validate a JSON query document.
    pub fn parse(body: &[u8]) -> Result<CarveQuery, QueryError> {
        let value = json::parse(body)?;
        let query = Self::from_value(&value)?;
        query.validate()?;
        Ok(query)
    }

    /// Structural parse from an already-parsed JSON value.
    pub fn from_value(value: &Value) -> Result<CarveQuery, QueryError> {
        let doc = value
            .as_doc()
            .ok_or_else(|| QueryError::structure("query must be a JSON object"))?;
        for (key, _) in doc.iter() {
            if key != "version" && key != "pipeline" {
                return Err(QueryError::structure(format!(
                    "unknown top-level key `{key}` (expected `version`, `pipeline`)"
                )));
            }
        }
        let version = match doc.get("version") {
            None | Some(Value::Null) => None,
            Some(Value::Int(i)) if *i >= 1 && *i <= i64::from(u32::MAX) => Some(*i as u32),
            Some(_) => {
                return Err(QueryError::structure(
                    "`version` must be a positive integer",
                ))
            }
        };
        let stages_val = doc
            .get("pipeline")
            .ok_or_else(|| QueryError::structure("missing `pipeline` array"))?;
        let Some(items) = stages_val.as_array() else {
            return Err(QueryError::structure("`pipeline` must be an array"));
        };
        let mut stages = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            stages.push(parse_stage(i, item)?);
        }
        Ok(CarveQuery { version, stages })
    }

    /// Validate every referenced path and operand against the document
    /// shape flowing through the pipeline: initially the catalog schema,
    /// then whatever `project`/`group`/`count` reshape it into (a sort
    /// after a group may reference `_key` or any accumulator output).
    /// Errors carry the stage index and the offending path.
    pub fn validate(&self) -> Result<(), QueryError> {
        let mut shape = Shape::Catalog;
        for (i, stage) in self.stages.iter().enumerate() {
            match stage {
                QueryStage::Match(f) => validate_filter(i, f, &shape)?,
                QueryStage::Sample { size, by, .. } => {
                    if *size == 0 {
                        return Err(QueryError::at_stage(i, "`sample.size` must be >= 1"));
                    }
                    if let Some(by) = by {
                        shape.require(i, by)?;
                    }
                }
                QueryStage::Sort { by, .. } => {
                    shape.require(i, by)?;
                }
                QueryStage::Project(paths) => {
                    if paths.is_empty() {
                        return Err(QueryError::at_stage(i, "`project` must list at least one path"));
                    }
                    let mut fields = Vec::with_capacity(paths.len());
                    for p in paths {
                        let kind = shape.require(i, p)?;
                        fields.push((p.clone(), kind));
                    }
                    shape = Shape::Fields(fields);
                }
                QueryStage::Group { by, accumulators } => {
                    let key_kind = shape.require(i, by)?;
                    let mut fields = vec![("_key".to_owned(), key_kind)];
                    for (name, acc) in accumulators {
                        let kind = match acc {
                            Accumulator::Count => Some(FieldKind::Int),
                            Accumulator::Sum(p) | Accumulator::Avg(p) => {
                                if shape.require(i, p)? == Some(FieldKind::Str) {
                                    return Err(QueryError::validation(
                                        i,
                                        p.clone(),
                                        "sum/avg need a numeric field",
                                    ));
                                }
                                Some(FieldKind::Float)
                            }
                            Accumulator::Min(p) | Accumulator::Max(p) | Accumulator::First(p) => {
                                shape.require(i, p)?
                            }
                            // Push yields an array; comparisons against it
                            // are untyped.
                            Accumulator::Push(p) => {
                                shape.require(i, p)?;
                                None
                            }
                        };
                        fields.push((name.clone(), kind));
                    }
                    shape = Shape::Fields(fields);
                }
                QueryStage::Count => {
                    shape = Shape::Fields(vec![("count".to_owned(), Some(FieldKind::Int))]);
                }
                QueryStage::Skip(_) | QueryStage::Limit(_) => {}
            }
        }
        Ok(())
    }

    /// The canonical fingerprint text: a deterministic rendering of the
    /// validated AST. Two JSON bodies that differ only in key order or
    /// whitespace canonicalize identically, so they share one carve
    /// cache entry.
    pub fn canonical(&self) -> String {
        let mut out = String::from("q1");
        if let Some(v) = self.version {
            out.push_str(";version=");
            out.push_str(&v.to_string());
        }
        for stage in &self.stages {
            out.push(';');
            out.push_str(stage.name());
            out.push('(');
            match stage {
                QueryStage::Match(f) => render_filter(f, &mut out),
                QueryStage::Sample { size, seed, by } => {
                    out.push_str(&format!("size={size},seed={seed}"));
                    if let Some(by) = by {
                        out.push_str(",by=");
                        out.push_str(by);
                    }
                }
                QueryStage::Sort { by, descending } => {
                    out.push_str(by);
                    if *descending {
                        out.push_str(",desc");
                    }
                }
                QueryStage::Project(paths) => out.push_str(&paths.join(",")),
                QueryStage::Group { by, accumulators } => {
                    out.push_str("by=");
                    out.push_str(by);
                    for (name, acc) in accumulators {
                        out.push(',');
                        out.push_str(name);
                        out.push('=');
                        render_accumulator(acc, &mut out);
                    }
                }
                QueryStage::Skip(n) | QueryStage::Limit(n) => out.push_str(&n.to_string()),
                QueryStage::Count => {}
            }
            out.push(')');
        }
        out
    }

    /// The predicate footprint for cache carry-forward.
    ///
    /// Only `match` stages that see the catalog shape — those before the
    /// first `project`/`group`/`count` — translate to predicates over
    /// catalog docs. A match over a transformed stream (accumulator
    /// outputs, `_key`, `count`) references paths that are always absent
    /// from catalog docs, so conjoining it would make the footprint
    /// match *nothing* and the carve would silently survive every
    /// publish. When such a stage exists the filter degrades to `None`
    /// (matches everything): the matched set becomes the full snapshot
    /// and any dirty cluster conservatively invalidates the entry.
    pub fn footprint(&self) -> QueryFootprint {
        let boundary = self
            .stages
            .iter()
            .position(|s| {
                matches!(
                    s,
                    QueryStage::Project(_) | QueryStage::Group { .. } | QueryStage::Count
                )
            })
            .unwrap_or(self.stages.len());
        let late_match = self.stages[boundary..]
            .iter()
            .any(|s| matches!(s, QueryStage::Match(_)));
        let filter = if late_match {
            None
        } else {
            let mut matches: Vec<Filter> = self.stages[..boundary]
                .iter()
                .filter_map(|s| match s {
                    QueryStage::Match(f) => Some(f.clone()),
                    _ => None,
                })
                .collect();
            match matches.len() {
                0 => None,
                1 => Some(matches.remove(0)),
                _ => Some(Filter::And(matches)),
            }
        };
        let scorer_dependent = self.referenced_paths().iter().any(|p| p == "het");
        QueryFootprint {
            filter,
            scorer_dependent,
        }
    }

    /// Every dotted path the query reads, in first-use order (duplicates
    /// removed).
    pub fn referenced_paths(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |p: &str| {
            if !out.iter().any(|q| q == p) {
                out.push(p.to_owned());
            }
        };
        for stage in &self.stages {
            match stage {
                QueryStage::Match(f) => {
                    let mut paths = Vec::new();
                    collect_filter_paths(f, &mut paths);
                    for p in paths {
                        push(&p);
                    }
                }
                QueryStage::Sample { by: Some(by), .. } => push(by),
                QueryStage::Sample { .. } => {}
                QueryStage::Sort { by, .. } => push(by),
                QueryStage::Project(paths) => {
                    for p in paths {
                        push(p);
                    }
                }
                QueryStage::Group { by, accumulators } => {
                    push(by);
                    for (_, acc) in accumulators {
                        match acc {
                            Accumulator::Count => {}
                            Accumulator::Sum(p)
                            | Accumulator::Avg(p)
                            | Accumulator::Min(p)
                            | Accumulator::Max(p)
                            | Accumulator::Push(p)
                            | Accumulator::First(p) => push(p),
                        }
                    }
                }
                QueryStage::Skip(_) | QueryStage::Limit(_) | QueryStage::Count => {}
            }
        }
        out
    }
}

/// The field shape of the document stream at one point in the pipeline.
enum Shape {
    /// The catalog's cluster-doc schema (initial shape).
    Catalog,
    /// An explicit field list (after `project`/`group`/`count`); `None`
    /// kind means comparisons against the field are untyped.
    Fields(Vec<(String, Option<FieldKind>)>),
}

impl Shape {
    /// Resolve a path against this shape, or fail with a typed error.
    fn require(&self, stage: usize, path: &str) -> Result<Option<FieldKind>, QueryError> {
        match self {
            Shape::Catalog => field_kind(path).map(Some).ok_or_else(|| {
                QueryError::validation(stage, path, format!("unknown field `{path}`"))
            }),
            Shape::Fields(fields) => fields
                .iter()
                .find(|(name, _)| name == path)
                .map(|(_, kind)| *kind)
                .ok_or_else(|| {
                    QueryError::validation(
                        stage,
                        path,
                        format!("field `{path}` is not produced by the preceding stage"),
                    )
                }),
        }
    }
}

fn validate_filter(stage: usize, f: &Filter, shape: &Shape) -> Result<(), QueryError> {
    let check_operand = |path: &str, v: &Value| -> Result<(), QueryError> {
        let ok = match shape.require(stage, path)? {
            Some(FieldKind::Str) => matches!(v, Value::Str(_)),
            Some(FieldKind::Int | FieldKind::Float) => {
                matches!(v, Value::Int(_) | Value::Float(_))
            }
            None => true,
        };
        if ok {
            Ok(())
        } else {
            Err(QueryError::validation(
                stage,
                path,
                format!("operand type does not match field `{path}`"),
            ))
        }
    };
    match f {
        Filter::True => Ok(()),
        Filter::Eq(p, v)
        | Filter::Ne(p, v)
        | Filter::Gt(p, v)
        | Filter::Gte(p, v)
        | Filter::Lt(p, v)
        | Filter::Lte(p, v) => check_operand(p, v),
        Filter::In(p, vs) => {
            for v in vs {
                check_operand(p, v)?;
            }
            Ok(())
        }
        Filter::Exists(p) => shape.require(stage, p).map(|_| ()),
        Filter::Contains(p, _) => match shape.require(stage, p)? {
            Some(FieldKind::Str) | None => Ok(()),
            _ => Err(QueryError::validation(
                stage,
                p.clone(),
                "contains needs a string field",
            )),
        },
        Filter::And(fs) | Filter::Or(fs) => {
            for f in fs {
                validate_filter(stage, f, shape)?;
            }
            Ok(())
        }
        Filter::Not(f) => validate_filter(stage, f, shape),
    }
}

fn collect_filter_paths(f: &Filter, out: &mut Vec<String>) {
    match f {
        Filter::True => {}
        Filter::Eq(p, _)
        | Filter::Ne(p, _)
        | Filter::Gt(p, _)
        | Filter::Gte(p, _)
        | Filter::Lt(p, _)
        | Filter::Lte(p, _)
        | Filter::In(p, _)
        | Filter::Exists(p)
        | Filter::Contains(p, _) => out.push(p.clone()),
        Filter::And(fs) | Filter::Or(fs) => {
            for f in fs {
                collect_filter_paths(f, out);
            }
        }
        Filter::Not(f) => collect_filter_paths(f, out),
    }
}

fn parse_stage(index: usize, item: &Value) -> Result<QueryStage, QueryError> {
    let doc = item
        .as_doc()
        .ok_or_else(|| QueryError::at_stage(index, "stage must be an object"))?;
    if doc.len() != 1 {
        return Err(QueryError::at_stage(
            index,
            "stage must have exactly one key (the stage name)",
        ));
    }
    let (name, spec) = doc.iter().next().expect("len checked");
    match name.as_str() {
        "match" => parse_match(index, spec).map(QueryStage::Match),
        "sample" => parse_sample(index, spec),
        "sort" => parse_sort(index, spec),
        "project" => {
            let Some(items) = spec.as_array() else {
                return Err(QueryError::at_stage(index, "`project` must be an array of paths"));
            };
            let mut paths = Vec::with_capacity(items.len());
            for it in items {
                match it.as_str() {
                    Some(s) => paths.push(s.to_owned()),
                    None => {
                        return Err(QueryError::at_stage(index, "`project` entries must be strings"))
                    }
                }
            }
            Ok(QueryStage::Project(paths))
        }
        "group" => parse_group(index, spec),
        "skip" => parse_nonneg(index, spec, "skip").map(QueryStage::Skip),
        "limit" => parse_nonneg(index, spec, "limit").map(QueryStage::Limit),
        "count" => match spec {
            Value::Bool(true) | Value::Doc(_) => Ok(QueryStage::Count),
            _ => Err(QueryError::at_stage(index, "`count` takes `true` or `{}`")),
        },
        other => Err(QueryError::at_stage(
            index,
            format!("unknown stage `{other}`"),
        )),
    }
}

fn parse_nonneg(index: usize, spec: &Value, name: &str) -> Result<usize, QueryError> {
    match spec {
        Value::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(QueryError::at_stage(
            index,
            format!("`{name}` must be a non-negative integer"),
        )),
    }
}

fn parse_sample(index: usize, spec: &Value) -> Result<QueryStage, QueryError> {
    let Some(doc) = spec.as_doc() else {
        return Err(QueryError::at_stage(index, "`sample` must be an object"));
    };
    let mut size = None;
    let mut seed = 0u64;
    let mut by = None;
    for (key, v) in doc.iter() {
        match key.as_str() {
            "size" => match v {
                Value::Int(i) if *i >= 1 => size = Some(*i as usize),
                _ => return Err(QueryError::at_stage(index, "`sample.size` must be >= 1")),
            },
            "seed" => match v {
                Value::Int(i) if *i >= 0 => seed = *i as u64,
                _ => {
                    return Err(QueryError::at_stage(
                        index,
                        "`sample.seed` must be a non-negative integer",
                    ))
                }
            },
            "by" => match v.as_str() {
                Some(s) => by = Some(s.to_owned()),
                None => return Err(QueryError::at_stage(index, "`sample.by` must be a path string")),
            },
            other => {
                return Err(QueryError::at_stage(
                    index,
                    format!("unknown `sample` key `{other}`"),
                ))
            }
        }
    }
    let size =
        size.ok_or_else(|| QueryError::at_stage(index, "`sample` requires a `size`"))?;
    Ok(QueryStage::Sample { size, seed, by })
}

fn parse_sort(index: usize, spec: &Value) -> Result<QueryStage, QueryError> {
    let Some(doc) = spec.as_doc() else {
        return Err(QueryError::at_stage(index, "`sort` must be an object"));
    };
    let mut by = None;
    let mut descending = false;
    for (key, v) in doc.iter() {
        match key.as_str() {
            "by" => match v.as_str() {
                Some(s) => by = Some(s.to_owned()),
                None => return Err(QueryError::at_stage(index, "`sort.by` must be a path string")),
            },
            "descending" => match v {
                Value::Bool(b) => descending = *b,
                _ => {
                    return Err(QueryError::at_stage(index, "`sort.descending` must be a boolean"))
                }
            },
            other => {
                return Err(QueryError::at_stage(
                    index,
                    format!("unknown `sort` key `{other}`"),
                ))
            }
        }
    }
    let by = by.ok_or_else(|| QueryError::at_stage(index, "`sort` requires `by`"))?;
    Ok(QueryStage::Sort { by, descending })
}

fn parse_group(index: usize, spec: &Value) -> Result<QueryStage, QueryError> {
    let Some(doc) = spec.as_doc() else {
        return Err(QueryError::at_stage(index, "`group` must be an object"));
    };
    let mut by = None;
    let mut accumulators = Vec::new();
    for (key, v) in doc.iter() {
        match key.as_str() {
            "by" => match v.as_str() {
                Some(s) => by = Some(s.to_owned()),
                None => return Err(QueryError::at_stage(index, "`group.by` must be a path string")),
            },
            "agg" => {
                let Some(aggs) = v.as_doc() else {
                    return Err(QueryError::at_stage(index, "`group.agg` must be an object"));
                };
                // Document iteration is sorted by field name, so the
                // accumulator order — and with it the canonical text and
                // output field order — is deterministic.
                for (name, acc) in aggs.iter() {
                    accumulators.push((name.clone(), parse_accumulator(index, name, acc)?));
                }
            }
            other => {
                return Err(QueryError::at_stage(
                    index,
                    format!("unknown `group` key `{other}`"),
                ))
            }
        }
    }
    let by = by.ok_or_else(|| QueryError::at_stage(index, "`group` requires `by`"))?;
    Ok(QueryStage::Group { by, accumulators })
}

fn parse_accumulator(index: usize, name: &str, spec: &Value) -> Result<Accumulator, QueryError> {
    if let Some("count") = spec.as_str() {
        return Ok(Accumulator::Count);
    }
    let Some(doc) = spec.as_doc() else {
        return Err(QueryError::at_stage(
            index,
            format!("accumulator `{name}` must be \"count\" or {{op: path}}"),
        ));
    };
    if doc.len() != 1 {
        return Err(QueryError::at_stage(
            index,
            format!("accumulator `{name}` must have exactly one op"),
        ));
    }
    let (op, v) = doc.iter().next().expect("len checked");
    let Some(path) = v.as_str() else {
        return Err(QueryError::at_stage(
            index,
            format!("accumulator `{name}` operand must be a path string"),
        ));
    };
    let path = path.to_owned();
    match op.as_str() {
        "sum" => Ok(Accumulator::Sum(path)),
        "avg" => Ok(Accumulator::Avg(path)),
        "min" => Ok(Accumulator::Min(path)),
        "max" => Ok(Accumulator::Max(path)),
        "push" => Ok(Accumulator::Push(path)),
        "first" => Ok(Accumulator::First(path)),
        other => Err(QueryError::at_stage(
            index,
            format!("unknown accumulator op `{other}`"),
        )),
    }
}

/// Parse a match document into a [`Filter`]. Top-level keys are field
/// paths (conjoined), plus `or` (array of match docs) and `not` (match
/// doc). A field's spec is either a bare scalar (equality) or an object
/// of operators: `eq`, `ne`, `gt`, `gte`, `lt`, `lte`, `in`, `exists`,
/// `contains`.
fn parse_match(index: usize, spec: &Value) -> Result<Filter, QueryError> {
    let Some(doc) = spec.as_doc() else {
        return Err(QueryError::at_stage(index, "`match` must be an object"));
    };
    let mut conjuncts = Vec::new();
    for (key, v) in doc.iter() {
        match key.as_str() {
            "or" => {
                let Some(items) = v.as_array() else {
                    return Err(QueryError::at_stage(index, "`or` must be an array of match objects"));
                };
                let mut arms = Vec::with_capacity(items.len());
                for item in items {
                    arms.push(parse_match(index, item)?);
                }
                conjuncts.push(Filter::Or(arms));
            }
            "not" => conjuncts.push(Filter::Not(Box::new(parse_match(index, v)?))),
            path => conjuncts.extend(parse_field_spec(index, path, v)?),
        }
    }
    Ok(match conjuncts.len() {
        0 => Filter::True,
        1 => conjuncts.remove(0),
        _ => Filter::And(conjuncts),
    })
}

fn parse_field_spec(index: usize, path: &str, spec: &Value) -> Result<Vec<Filter>, QueryError> {
    match spec {
        Value::Doc(ops) => {
            let mut out = Vec::with_capacity(ops.len());
            for (op, operand) in ops.iter() {
                out.push(parse_op(index, path, op, operand)?);
            }
            if out.is_empty() {
                return Err(QueryError::at_stage(
                    index,
                    format!("empty operator object for `{path}`"),
                ));
            }
            Ok(out)
        }
        Value::Array(_) => Err(QueryError::at_stage(
            index,
            format!("field `{path}` spec must be a scalar or an operator object"),
        )),
        scalar => Ok(vec![Filter::Eq(path.to_owned(), scalar.clone())]),
    }
}

fn parse_op(index: usize, path: &str, op: &str, v: &Value) -> Result<Filter, QueryError> {
    let p = path.to_owned();
    match op {
        "eq" => Ok(Filter::Eq(p, v.clone())),
        "ne" => Ok(Filter::Ne(p, v.clone())),
        "gt" => Ok(Filter::Gt(p, v.clone())),
        "gte" => Ok(Filter::Gte(p, v.clone())),
        "lt" => Ok(Filter::Lt(p, v.clone())),
        "lte" => Ok(Filter::Lte(p, v.clone())),
        "in" => match v.as_array() {
            Some(items) => Ok(Filter::In(p, items.to_vec())),
            None => Err(QueryError::at_stage(index, format!("`{path}.in` must be an array"))),
        },
        "exists" => match v {
            Value::Bool(true) => Ok(Filter::Exists(p)),
            Value::Bool(false) => Ok(Filter::Not(Box::new(Filter::Exists(p)))),
            _ => Err(QueryError::at_stage(index, format!("`{path}.exists` must be a boolean"))),
        },
        "contains" => match v.as_str() {
            Some(s) => Ok(Filter::Contains(p, s.to_owned())),
            None => Err(QueryError::at_stage(
                index,
                format!("`{path}.contains` must be a string"),
            )),
        },
        other => Err(QueryError::at_stage(
            index,
            format!("unknown operator `{other}` on `{path}`"),
        )),
    }
}

/// Deterministic rendering of a filter for the canonical text.
fn render_filter(f: &Filter, out: &mut String) {
    match f {
        Filter::True => out.push_str("true"),
        Filter::Eq(p, v) => render_cmp(out, p, "==", v),
        Filter::Ne(p, v) => render_cmp(out, p, "!=", v),
        Filter::Gt(p, v) => render_cmp(out, p, ">", v),
        Filter::Gte(p, v) => render_cmp(out, p, ">=", v),
        Filter::Lt(p, v) => render_cmp(out, p, "<", v),
        Filter::Lte(p, v) => render_cmp(out, p, "<=", v),
        Filter::In(p, vs) => {
            out.push_str(p);
            out.push_str(" in ");
            Value::Array(vs.clone()).render_json(out);
        }
        Filter::Exists(p) => {
            out.push_str("exists ");
            out.push_str(p);
        }
        Filter::Contains(p, s) => {
            out.push_str(p);
            out.push_str(" contains ");
            Value::Str(s.clone()).render_json(out);
        }
        Filter::And(fs) => render_list(out, "and", fs),
        Filter::Or(fs) => render_list(out, "or", fs),
        Filter::Not(f) => {
            out.push_str("not[");
            render_filter(f, out);
            out.push(']');
        }
    }
}

fn render_cmp(out: &mut String, p: &str, op: &str, v: &Value) {
    out.push_str(p);
    out.push(' ');
    out.push_str(op);
    out.push(' ');
    v.render_json(out);
}

fn render_list(out: &mut String, name: &str, fs: &[Filter]) {
    out.push_str(name);
    out.push('[');
    for (i, f) in fs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_filter(f, out);
    }
    out.push(']');
}

fn render_accumulator(acc: &Accumulator, out: &mut String) {
    match acc {
        Accumulator::Count => out.push_str("count"),
        Accumulator::Sum(p) => {
            out.push_str("sum:");
            out.push_str(p);
        }
        Accumulator::Avg(p) => {
            out.push_str("avg:");
            out.push_str(p);
        }
        Accumulator::Min(p) => {
            out.push_str("min:");
            out.push_str(p);
        }
        Accumulator::Max(p) => {
            out.push_str("max:");
            out.push_str(p);
        }
        Accumulator::Push(p) => {
            out.push_str("push:");
            out.push_str(p);
        }
        Accumulator::First(p) => {
            out.push_str("first:");
            out.push_str(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_pipeline() {
        let q = CarveQuery::parse(
            br#"{
                "version": 2,
                "pipeline": [
                    {"match": {"size": {"gte": 2, "lte": 10}, "errors.typo": {"gt": 0}}},
                    {"sort": {"by": "het", "descending": true}},
                    {"sample": {"size": 100, "seed": 42, "by": "size"}},
                    {"limit": 50}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(q.version, Some(2));
        assert_eq!(q.stages.len(), 4);
        assert!(matches!(&q.stages[0], QueryStage::Match(Filter::And(fs)) if fs.len() == 3));
        assert!(matches!(
            &q.stages[2],
            QueryStage::Sample { size: 100, seed: 42, by: Some(b) } if b == "size"
        ));
    }

    #[test]
    fn bare_scalar_is_equality() {
        let q = CarveQuery::parse(br#"{"pipeline": [{"match": {"ncid": "AA1"}}]}"#).unwrap();
        assert_eq!(
            q.stages[0],
            QueryStage::Match(Filter::eq("ncid", "AA1"))
        );
    }

    #[test]
    fn or_not_exists_contains() {
        let q = CarveQuery::parse(
            br#"{"pipeline": [{"match": {
                "or": [{"size": 1}, {"size": {"gte": 5}}],
                "not": {"plaus": {"lt": 0.2}},
                "ncid": {"contains": "A", "exists": true}
            }}]}"#,
        )
        .unwrap();
        let QueryStage::Match(f) = &q.stages[0] else {
            panic!()
        };
        // Keys iterate sorted: ncid (contains, exists), not, or.
        let Filter::And(fs) = f else { panic!("{f:?}") };
        assert_eq!(fs.len(), 4);
    }

    #[test]
    fn json_errors_carry_offset() {
        let e = CarveQuery::parse(b"{\"pipeline\": [}").unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Json);
        assert_eq!(e.offset, Some(14));
        let body = e.render_json();
        assert!(body.contains("\"offset\":14"), "{body}");
        assert!(body.contains("\"kind\":\"json\""), "{body}");
    }

    #[test]
    fn structure_errors_carry_stage() {
        let e = CarveQuery::parse(br#"{"pipeline": [{"match": {}}, {"frobnicate": 1}]}"#)
            .unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Structure);
        assert_eq!(e.stage, Some(1));
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn validation_rejects_unknown_paths_and_bad_operands() {
        let e = CarveQuery::parse(br#"{"pipeline": [{"match": {"hetero": {"gt": 0}}}]}"#)
            .unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Validation);
        assert_eq!(e.stage, Some(0));
        assert_eq!(e.path.as_deref(), Some("hetero"));

        let e = CarveQuery::parse(br#"{"pipeline": [{"match": {"size": {"gt": "two"}}}]}"#)
            .unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Validation);
        assert_eq!(e.path.as_deref(), Some("size"));

        let e = CarveQuery::parse(br#"{"pipeline": [{"sort": {"by": "sizes"}}]}"#).unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Validation);
        assert_eq!(e.stage, Some(0));
    }

    #[test]
    fn canonical_is_key_order_independent() {
        let a = CarveQuery::parse(
            br#"{"pipeline": [{"match": {"size": {"gte": 2, "lte": 9}, "ncid": {"contains": "A"}}}], "version": 1}"#,
        )
        .unwrap();
        let b = CarveQuery::parse(
            br#"{"version": 1, "pipeline": [{"match": {"ncid": {"contains": "A"}, "size": {"lte": 9, "gte": 2}}}]}"#,
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.canonical().starts_with("q1;version=1;match("));
    }

    #[test]
    fn footprint_combines_matches_and_flags_het() {
        let q = CarveQuery::parse(
            br#"{"pipeline": [{"match": {"size": {"gte": 2}}}, {"sort": {"by": "het"}}]}"#,
        )
        .unwrap();
        let fp = q.footprint();
        assert!(fp.scorer_dependent, "sort by het is scorer-dependent");
        assert_eq!(fp.filter, Some(Filter::gte("size", 2_i64)));

        let q = CarveQuery::parse(
            br#"{"pipeline": [{"match": {"size": {"gte": 2}}}, {"sort": {"by": "plaus"}}]}"#,
        )
        .unwrap();
        assert!(!q.footprint().scorer_dependent);

        let q = CarveQuery::parse(br#"{"pipeline": [{"limit": 3}]}"#).unwrap();
        let fp = q.footprint();
        assert_eq!(fp.filter, None);
        let mut d = Document::new();
        d.set("size", 1_i64);
        assert!(fp.matches(&d), "no filter matches everything");
    }

    #[test]
    fn footprint_degrades_to_match_everything_after_transform_match() {
        // The match on `n` sees the group's output shape, not catalog
        // docs — conjoining it would match nothing and the carve would
        // never be invalidated. The footprint must match everything.
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"group": {"by": "size", "agg": {"n": "count"}}},
                {"match": {"n": {"gte": 5}}}
            ]}"#,
        )
        .unwrap();
        let fp = q.footprint();
        assert_eq!(fp.filter, None);
        let mut d = Document::new();
        d.set("size", 1_i64);
        assert!(fp.matches(&d), "conservative footprint matches any doc");

        // A catalog-shape match before the transform still degrades:
        // the late match can widen membership beyond the early filter.
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"match": {"size": {"gte": 2}}},
                {"project": ["size", "het"]},
                {"match": {"het": {"gte": 0.0}}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(q.footprint().filter, None);

        // With no match after the transform, the leading match still
        // forms the footprint as before.
        let q = CarveQuery::parse(
            br#"{"pipeline": [
                {"match": {"size": {"gte": 2}}},
                {"group": {"by": "size", "agg": {"n": "count"}}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(q.footprint().filter, Some(Filter::gte("size", 2_i64)));
    }

    #[test]
    fn group_accumulators_parse_in_sorted_order() {
        let q = CarveQuery::parse(
            br#"{"pipeline": [{"group": {"by": "size", "agg": {
                "n": "count", "avg_het": {"avg": "het"}, "max_p": {"max": "plaus"}
            }}}]}"#,
        )
        .unwrap();
        let QueryStage::Group { accumulators, .. } = &q.stages[0] else {
            panic!()
        };
        let names: Vec<&str> = accumulators.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["avg_het", "max_p", "n"]);
    }

    #[test]
    fn rejects_sum_over_string_field() {
        let e = CarveQuery::parse(
            br#"{"pipeline": [{"group": {"by": "size", "agg": {"s": {"sum": "ncid"}}}}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, QueryErrorKind::Validation);
        assert_eq!(e.path.as_deref(), Some("ncid"));
    }

    #[test]
    fn version_and_pipeline_shape_checks() {
        assert!(CarveQuery::parse(b"[1]").is_err());
        assert!(CarveQuery::parse(br#"{"pipeline": {}}"#).is_err());
        assert!(CarveQuery::parse(br#"{"version": 0, "pipeline": []}"#).is_err());
        assert!(CarveQuery::parse(br#"{"pipelines": []}"#).is_err());
        let q = CarveQuery::parse(br#"{"pipeline": []}"#).unwrap();
        assert!(q.stages.is_empty());
    }
}
