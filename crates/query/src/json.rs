//! A hand-rolled JSON parser producing [`nc_docstore::value::Value`]
//! trees, with byte-offset error reporting.
//!
//! nc-serve deliberately carries no JSON library — every response body
//! it emits is hand-rendered — so the query boundary parses request
//! bodies the same way. Unlike a serde front end, every parse failure
//! here carries the byte offset of the offending input, which `POST
//! /carve` surfaces in its typed 400 error body.

use nc_docstore::value::{Document, Value};

/// Maximum nesting depth accepted (arrays + objects combined). Query
/// documents are shallow; the bound keeps hostile bodies from
/// overflowing the parser's recursion.
const MAX_DEPTH: usize = 64;

/// A JSON syntax error at a byte offset of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parse one JSON value from `input`, rejecting trailing garbage.
pub fn parse(input: &[u8]) -> Result<Value, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.input[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{text}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut doc = Document::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Doc(doc));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            doc.set(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Doc(doc));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                self.pos = start;
                                return Err(self.err("unpaired UTF-16 surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                self.pos = start;
                                return Err(self.err("invalid UTF-16 surrogate pair"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => {
                                self.pos = start;
                                return Err(self.err("invalid unicode escape"));
                            }
                        }
                    }
                    _ => {
                        self.pos = start;
                        return Err(self.err("invalid escape sequence"));
                    }
                },
                Some(b) if b < 0x20 => {
                    self.pos = start;
                    return Err(self.err("unescaped control character in string"));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: re-decode from the byte start.
                    let rest = &self.input[start..];
                    let width = utf8_width(rest[0]);
                    if rest.len() < width {
                        self.pos = start;
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&rest[..width]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + width;
                        }
                        Err(_) => {
                            self.pos = start;
                            return Err(self.err("invalid UTF-8 in string"));
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("invalid hex digit in unicode escape"));
                }
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            self.pos = start;
            return Err(self.err("invalid number"));
        }
        // RFC 8259: no leading zeros ("0123", "-007" are not JSON).
        if self.input[digits_start] == b'0' && self.pos - digits_start > 1 {
            self.pos = start;
            return Err(self.err("invalid number (leading zero)"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                self.pos = start;
                return Err(self.err("invalid number (empty fraction)"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                self.pos = start;
                return Err(self.err("invalid number (empty exponent)"));
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => {
                self.pos = start;
                Err(self.err("number out of range"))
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse(b"null").unwrap(), Value::Null);
        assert_eq!(parse(b"true").unwrap(), Value::Bool(true));
        assert_eq!(parse(b"  -42 ").unwrap(), Value::Int(-42));
        assert_eq!(parse(b"1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse(b"2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(parse(b"\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(br#"{"a": [1, {"b": "x"}], "c": 0.25}"#).unwrap();
        let d = v.as_doc().unwrap();
        assert_eq!(d.get_i64("a.0"), Some(1));
        assert_eq!(d.get_str("a.1.b"), Some("x"));
        assert_eq!(d.get_f64("c"), Some(0.25));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(br#""a\n\t\"\\A""#).unwrap(),
            Value::Str("a\n\t\"\\A".into())
        );
        // Surrogate pair escape for U+1F600.
        assert_eq!(
            parse(br#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"é\"".as_bytes()).unwrap(), Value::Str("é".into()));
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let e = parse(b"{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        let e = parse(b"[1, 2").unwrap_err();
        assert_eq!(e.offset, 5);
        let e = parse(b"{\"a\": 1} x").unwrap_err();
        assert_eq!(e.offset, 9);
        let e = parse(b"").unwrap_err();
        assert_eq!(e.offset, 0);
        let e = parse(b"nul").unwrap_err();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn rejects_unpaired_surrogates_and_bad_escapes() {
        assert!(parse(br#""\ud83d""#).is_err());
        assert!(parse(br#""\q""#).is_err());
        assert!(parse(b"\"\x01\"").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        assert!(parse(s.as_bytes()).is_err());
    }

    #[test]
    fn rejects_leading_zeros() {
        assert!(parse(b"0123").is_err());
        assert!(parse(b"-007").is_err());
        assert!(parse(br#"{"a": 01}"#).is_err());
        // A lone zero (and zero-led fractions/exponents) are fine.
        assert_eq!(parse(b"0").unwrap(), Value::Int(0));
        assert_eq!(parse(b"-0").unwrap(), Value::Int(0));
        assert_eq!(parse(b"0.5").unwrap(), Value::Float(0.5));
        assert_eq!(parse(b"0e2").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn int_overflow_falls_back_to_float() {
        let v = parse(b"99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn round_trips_through_render_json() {
        let src = br#"{"match":{"size":{"gte":2},"het":{"lt":0.4}},"limit":10}"#;
        let v = parse(src).unwrap();
        let rendered = v.to_json();
        assert_eq!(parse(rendered.as_bytes()).unwrap(), v);
    }
}
