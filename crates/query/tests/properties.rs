//! Equivalence properties for the query planner and executor.
//!
//! The planner is only allowed to change *how rows are sourced* — never
//! what comes out. These properties pin that down over random catalogs
//! and random pipelines:
//!
//! * indexed execution is byte-identical to a forced full scan;
//! * planned execution is byte-identical to the naive reference
//!   (`Pipeline::run_docs` over every cluster doc);
//! * the same `(seed, query, version)` replays the same sampled carve
//!   from a freshly rebuilt catalog — including when the snapshot was
//!   published by a sharded store instead of the sequential one.

use nc_core::heterogeneity::Scope;
use nc_core::snapshot::StoreSnapshot;
use nc_query::{execute, execute_naive, CarveQuery, ClusterCatalog, ExecOptions};
use nc_votergen::schema::{Row, FIRST_NAME, LAST_NAME, NCID, SNAPSHOT_DT};
use proptest::prelude::*;

const FIRSTS: [&str; 4] = ["ANNA", "BRUNO", "CLARA", "DILIP"];
const LASTS: [&str; 4] = ["SMITH", "SMYTH", "NGUYEN", "OKAFOR"];
const DATES: [&str; 3] = ["2019-03-02", "2020-01-01", "2021-07-15"];

fn row(ncid: &str, first: &str, last: &str, snap: &str) -> Row {
    let mut r = Row::empty();
    r.set(NCID, ncid);
    r.set(FIRST_NAME, first);
    r.set(LAST_NAME, last);
    r.set(SNAPSHOT_DT, snap);
    r
}

/// One cluster's shape, drawn by proptest: how many extra records it
/// holds beyond the founding one, and which name/date variants seed it.
#[derive(Debug, Clone)]
struct ClusterSpec {
    extra: usize,
    name: usize,
    date: usize,
}

fn clusters_from(specs: &[ClusterSpec]) -> Vec<(String, Vec<Row>)> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let ncid = format!("C{i:04}");
            let mut rows = vec![row(
                &ncid,
                FIRSTS[s.name % FIRSTS.len()],
                LASTS[s.name % LASTS.len()],
                DATES[s.date % DATES.len()],
            )];
            for k in 0..s.extra {
                rows.push(row(
                    &ncid,
                    FIRSTS[(s.name + k + 1) % FIRSTS.len()],
                    LASTS[(s.name * 2 + k) % LASTS.len()],
                    DATES[(s.date + k + 1) % DATES.len()],
                ));
            }
            (ncid, rows)
        })
        .collect()
}

fn catalog_from(specs: &[ClusterSpec]) -> ClusterCatalog {
    let snapshot = StoreSnapshot::from_clusters(1, clusters_from(specs));
    let het = snapshot.entropy_scorer(Scope::Person);
    ClusterCatalog::build(&snapshot, &het)
}

fn cluster_specs() -> impl Strategy<Value = Vec<ClusterSpec>> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, 0usize..3)
            .prop_map(|(extra, name, date)| ClusterSpec { extra, name, date }),
        1..40,
    )
}

/// `proptest::option::of` — the offline stub doesn't ship the `option`
/// module, so emulate it with a two-way choice.
fn maybe<S: Strategy<Value = String> + 'static>(s: S) -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), s.prop_map(Some)]
}

fn op() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("eq"),
        Just("ne"),
        Just("gt"),
        Just("gte"),
        Just("lt"),
        Just("lte"),
    ]
}

/// One conjunct per field, so the generated match object never has
/// duplicate JSON keys. `size`/`plaus`/`snapshot.first` ride ordered
/// indexes, `ncid` a hash index, and `errors.total` is deliberately
/// unindexed — so random pipelines cover indexed, hash-miss (range on
/// hash) and scan access paths alike.
fn match_stage() -> impl Strategy<Value = String> {
    let size = (op(), 0u64..6).prop_map(|(op, v)| format!(r#""size": {{"{op}": {v}}}"#));
    let plaus =
        (op(), -20i32..60).prop_map(|(op, v)| format!(r#""plaus": {{"{op}": {:?}}}"#, v as f64 / 8.0));
    let ncid = (op(), 0usize..40).prop_map(|(op, i)| format!(r#""ncid": {{"{op}": "C{i:04}"}}"#));
    let date =
        (op(), 0usize..3).prop_map(|(op, d)| format!(r#""snapshot.first": {{"{op}": "{}"}}"#, DATES[d]));
    let errors = (op(), 0u64..4).prop_map(|(op, v)| format!(r#""errors.total": {{"{op}": {v}}}"#));
    (
        maybe(size),
        maybe(plaus),
        maybe(ncid),
        maybe(date),
        maybe(errors),
    )
        .prop_map(|(a, b, c, d, e)| {
            let parts: Vec<String> = [a, b, c, d, e].into_iter().flatten().collect();
            if parts.is_empty() {
                String::new()
            } else {
                format!(r#"{{"match": {{{}}}}}"#, parts.join(", "))
            }
        })
}

fn tail_stage() -> impl Strategy<Value = String> {
    let sample = (1usize..8, any::<u32>())
        .prop_map(|(n, seed)| format!(r#"{{"sample": {{"size": {n}, "seed": {seed}}}}}"#));
    let stratified = (1usize..4, any::<u32>()).prop_map(|(n, seed)| {
        format!(r#"{{"sample": {{"size": {n}, "seed": {seed}, "by": "size"}}}}"#)
    });
    let sort = (
        prop_oneof![Just("size"), Just("het"), Just("plaus"), Just("ncid")],
        any::<bool>(),
    )
        .prop_map(|(by, desc)| format!(r#"{{"sort": {{"by": "{by}", "descending": {desc}}}}}"#));
    let skip = (0usize..6).prop_map(|n| format!(r#"{{"skip": {n}}}"#));
    let limit = (1usize..10).prop_map(|n| format!(r#"{{"limit": {n}}}"#));
    prop_oneof![sample, stratified, sort, skip, limit]
}

fn terminal() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(None),
        Just(Some(r#"{"count": true}"#.to_string())),
        Just(Some(r#"{"project": ["ncid", "size", "het"]}"#.to_string())),
        Just(Some(
            r#"{"group": {"by": "size", "agg": {"n": "count", "max_plaus": {"max": "plaus"}}}}"#
                .to_string()
        )),
    ]
}

fn pipeline() -> impl Strategy<Value = String> {
    (
        match_stage(),
        proptest::collection::vec(tail_stage(), 0..3),
        terminal(),
    )
        .prop_map(|(m, tails, term)| {
            let mut stages: Vec<String> = Vec::new();
            if !m.is_empty() {
                stages.push(m);
            }
            stages.extend(tails);
            if let Some(t) = term {
                stages.push(t);
            }
            format!(r#"{{"pipeline": [{}]}}"#, stages.join(", "))
        })
}

fn parse(body: &str) -> CarveQuery {
    CarveQuery::parse(body.as_bytes())
        .unwrap_or_else(|e| panic!("generated query must parse: {body}: {}", e.render_json()))
}

fn rendered(docs: &[nc_docstore::value::Document]) -> Vec<String> {
    docs.iter().map(|d| d.to_json()).collect()
}

proptest! {
    /// The indexed plan and a forced full scan produce byte-identical
    /// results — same matched set, same capture positions, same
    /// rendered documents.
    #[test]
    fn indexed_plan_matches_forced_scan(specs in cluster_specs(), body in pipeline()) {
        let cat = catalog_from(&specs);
        let query = parse(&body);
        let fast = execute(&cat, &query, ExecOptions::default());
        let slow = execute(&cat, &query, ExecOptions { force_scan: true });
        prop_assert!(slow.explain.full_scan);
        prop_assert_eq!(&fast.matched, &slow.matched, "query: {}", body);
        prop_assert_eq!(&fast.positions, &slow.positions, "query: {}", body);
        prop_assert_eq!(rendered(&fast.docs), rendered(&slow.docs), "query: {}", body);
    }

    /// Planned execution equals the naive reference: every cluster doc
    /// pushed through `Pipeline::run_docs` one stage at a time.
    #[test]
    fn planned_execution_equals_naive(specs in cluster_specs(), body in pipeline()) {
        let cat = catalog_from(&specs);
        let query = parse(&body);
        let planned = execute(&cat, &query, ExecOptions::default());
        let naive = execute_naive(&cat, &query);
        prop_assert_eq!(rendered(&planned.docs), rendered(&naive), "query: {}", body);
    }

    /// Rebuilding the catalog from scratch and replaying the same query
    /// (same seed embedded in the body) reproduces the identical carve.
    #[test]
    fn replay_from_rebuilt_catalog_is_bit_identical(
        specs in cluster_specs(),
        body in pipeline(),
    ) {
        let first = execute(&catalog_from(&specs), &parse(&body), ExecOptions::default());
        let second = execute(&catalog_from(&specs), &parse(&body), ExecOptions::default());
        prop_assert_eq!(&first.matched, &second.matched);
        prop_assert_eq!(&first.positions, &second.positions);
        prop_assert_eq!(rendered(&first.docs), rendered(&second.docs));
    }
}

/// A sampled query carve is reproducible across a *sharded* publish:
/// the sharded store's merged snapshot presents clusters in global
/// founding order, so the catalog, the matched set, the sample and the
/// rendered documents are all byte-identical to the sequential store's
/// at the same version — under any shard count.
#[test]
fn sampled_carve_reproduces_across_sharded_publish() {
    use nc_core::cluster::ClusterStore;
    use nc_core::import::import_snapshot;
    use nc_core::record::DedupPolicy;
    use nc_shard::ShardedStore;
    use nc_votergen::config::GeneratorConfig;
    use nc_votergen::registry::Registry;
    use nc_votergen::snapshot::standard_calendar;

    let mut reg = Registry::new(GeneratorConfig {
        seed: 42,
        initial_population: 400,
        ..Default::default()
    });
    let snaps: Vec<_> = standard_calendar()
        .iter()
        .take(4)
        .map(|info| reg.generate_snapshot(info))
        .collect();

    let mut store = ClusterStore::new();
    for (i, s) in snaps.iter().enumerate() {
        import_snapshot(&mut store, s, DedupPolicy::Trimmed, i as u32 + 1);
    }
    let sequential = StoreSnapshot::capture(&store, 5);
    let het = sequential.entropy_scorer(Scope::Person);
    let reference = ClusterCatalog::build(&sequential, &het);

    let query = parse(
        r#"{"pipeline": [
            {"match": {"size": {"gte": 2}}},
            {"sample": {"size": 25, "seed": 99}}
        ]}"#,
    );
    let want = execute(&reference, &query, ExecOptions::default());
    assert!(!want.docs.is_empty(), "fixture must carve something");
    assert!(!want.explain.full_scan, "size rides an ordered index");

    for shard_count in [1, 3, 7] {
        let mut sharded = ShardedStore::new(shard_count);
        for (i, s) in snaps.iter().enumerate() {
            sharded.ingest_snapshot(s, DedupPolicy::Trimmed, i as u32 + 1);
        }
        let snapshot = sharded.publish(5);
        let het = snapshot.entropy_scorer(Scope::Person);
        let catalog = ClusterCatalog::build(&snapshot, &het);
        let got = execute(&catalog, &query, ExecOptions::default());
        assert_eq!(got.matched, want.matched, "{shard_count} shards");
        assert_eq!(got.positions, want.positions, "{shard_count} shards");
        assert_eq!(
            rendered(&got.docs),
            rendered(&want.docs),
            "{shard_count} shards"
        );
    }
}
