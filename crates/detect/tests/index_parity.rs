//! Property tests of the indexed blocking layer: scan/index parity,
//! sink dedup semantics, parallel determinism and the count-filter
//! admission guarantee.

use std::collections::HashSet;

use nc_detect::blocking::{Blocker, SortedNeighborhood, StreamBlocker};
use nc_detect::dataset::{Dataset, Pair};
use nc_detect::index::{
    FreqVectorBlocker, IndexedQGramBlocker, IndexedTokenBlocker, OverlapBound, SoundexBlocker,
    StopPolicy,
};
use nc_detect::qgram_blocking::QGramBlocking;
use nc_detect::sink::{CandidateSink, PairCollector, QualitySink};
use proptest::prelude::*;

/// Random datasets over a small alphabet (high gram collision rate) —
/// one noisy name-like attribute and one short code attribute.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(("[A-D]{0,6}", "[A-C]{1,3}", 0usize..8), 2..40).prop_map(|rows| {
        let mut d = Dataset::new(vec!["name".into(), "code".into()]);
        for (a, b, cluster) in rows {
            d.push(vec![a, b], cluster);
        }
        d
    })
}

/// Datasets with some unicode and whitespace mixed in.
fn messy_dataset_strategy() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(("[a-dÄö ]{0,8}", 0usize..6), 2..25).prop_map(|rows| {
        let mut d = Dataset::new(vec!["v".into()]);
        for (a, cluster) in rows {
            d.push(vec![a], cluster);
        }
        d
    })
}

proptest! {
    /// The indexed q-gram blocker emits exactly the candidate set of
    /// the scan-based q-gram blocker under the same fraction policy.
    #[test]
    fn indexed_qgram_equals_scan_qgram(
        data in dataset_strategy(),
        q in 1usize..4,
        frac in 0.02f64..1.0,
    ) {
        let scan = QGramBlocking { key: 0, q, max_block_fraction: frac }.candidates(&data);
        let indexed = IndexedQGramBlocker {
            key: 0,
            q,
            stop: StopPolicy::Fraction(frac),
            threads: 1,
        }
        .candidates(&data);
        prop_assert_eq!(scan, indexed);
    }

    /// Scan/index parity holds on messy (unicode, whitespace) values.
    #[test]
    fn indexed_qgram_parity_on_messy_values(data in messy_dataset_strategy(), q in 1usize..4) {
        let scan = QGramBlocking { key: 0, q, max_block_fraction: 0.5 }.candidates(&data);
        let indexed = IndexedQGramBlocker {
            key: 0,
            q,
            stop: StopPolicy::Fraction(0.5),
            threads: 1,
        }
        .candidates(&data);
        prop_assert_eq!(scan, indexed);
    }

    /// The deduplicating collector has exactly `HashSet<Pair>` member
    /// semantics for any emission sequence, and its sorted output is
    /// duplicate-free.
    #[test]
    fn collector_dedup_equals_hashset(
        raw in proptest::collection::vec((0usize..30, 0usize..30), 0..300),
    ) {
        let pairs: Vec<Pair> = raw
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Pair::new(a, b))
            .collect();
        let mut set: HashSet<Pair> = HashSet::new();
        let mut collector = PairCollector::new();
        for &p in &pairs {
            set.push(p);
            collector.push(p);
        }
        prop_assert_eq!(collector.emitted(), pairs.len() as u64);
        let sorted = collector.finish();
        prop_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let as_set: HashSet<Pair> = sorted.into_iter().collect();
        prop_assert_eq!(as_set, set);
    }

    /// Every indexed blocker's parallel probe is bit-identical to the
    /// sequential one for threads ∈ {1, 2, 4}: same pairs, same order.
    #[test]
    fn parallel_probe_bit_identical(data in dataset_strategy(), q in 1usize..4) {
        type MakeBlocker = Box<dyn Fn(usize) -> Box<dyn StreamBlocker>>;
        let blockers: Vec<MakeBlocker> = vec![
            Box::new(move |t| Box::new(IndexedQGramBlocker {
                key: 0, q, stop: StopPolicy::Fraction(0.3), threads: t,
            })),
            Box::new(|t| Box::new(IndexedTokenBlocker {
                keys: vec![0, 1], min_overlap: 1, stop: StopPolicy::Absolute(16), threads: t,
            })),
            Box::new(|t| Box::new(SoundexBlocker {
                key: 0, stop: StopPolicy::Absolute(16), threads: t,
            })),
            Box::new(move |t| Box::new(FreqVectorBlocker {
                key: 0, q, bound: OverlapBound::EditDistance(1), stop: StopPolicy::None, threads: t,
            })),
        ];
        for make in &blockers {
            let mut seq: Vec<Pair> = Vec::new();
            make(1).stream_into(&data, &mut seq);
            for threads in [2usize, 4] {
                let mut par: Vec<Pair> = Vec::new();
                make(threads).stream_into(&data, &mut par);
                prop_assert_eq!(&seq, &par, "threads={}", threads);
            }
        }
    }

    /// Distinct emitters really emit each pair once: raw emission count
    /// equals the distinct candidate count.
    #[test]
    fn distinct_emitters_emit_once(data in dataset_strategy(), q in 1usize..4) {
        let blockers: Vec<Box<dyn StreamBlocker>> = vec![
            Box::new(IndexedQGramBlocker { key: 0, q, stop: StopPolicy::Fraction(0.4), threads: 1 }),
            Box::new(IndexedTokenBlocker { keys: vec![0], min_overlap: 1, stop: StopPolicy::None, threads: 1 }),
            Box::new(SoundexBlocker { key: 0, stop: StopPolicy::None, threads: 1 }),
            Box::new(FreqVectorBlocker {
                key: 0, q, bound: OverlapBound::Ratio(0.5), stop: StopPolicy::None, threads: 1,
            }),
        ];
        for b in &blockers {
            prop_assert!(b.emits_distinct());
            let mut raw: Vec<Pair> = Vec::new();
            b.stream_into(&data, &mut raw);
            let distinct: HashSet<Pair> = raw.iter().copied().collect();
            prop_assert_eq!(raw.len(), distinct.len());
            for p in &raw {
                prop_assert!(p.0 < p.1 && p.1 < data.len());
            }
        }
    }

    /// The q-gram count filter admits every pair within the configured
    /// edit distance when nothing is stop-pruned (no false dismissal).
    #[test]
    fn count_filter_admits_within_distance(data in dataset_strategy(), k in 1usize..3) {
        let b = FreqVectorBlocker {
            key: 0,
            q: 2,
            bound: OverlapBound::EditDistance(k),
            stop: StopPolicy::None,
            threads: 1,
        };
        let candidates = b.candidates(&data);
        for i in 0..data.len() {
            for j in 0..i {
                let a = data.records[j].values[0].trim().to_uppercase();
                let c = data.records[i].values[0].trim().to_uppercase();
                if a.is_empty() || c.is_empty() {
                    continue; // empty values join no block by design
                }
                // The admission guarantee requires values long enough
                // that k edits cannot destroy every gram (see
                // `OverlapBound::EditDistance`).
                let grams = |s: &str| (s.chars().count().max(1) - 1).max(1) as i64;
                if grams(&a).max(grams(&c)) - (k as i64 * 2) < 1 {
                    continue;
                }
                if nc_similarity::damerau::distance(&a, &c) <= k {
                    prop_assert!(
                        candidates.contains(&Pair(j, i)),
                        "({}, {}) within distance {} but dismissed", a, c, k
                    );
                }
            }
        }
    }

    /// Streamed quality accounting agrees with materialized accounting
    /// for the multi-pass SNM baseline.
    #[test]
    fn quality_sink_matches_materialized_completeness(
        data in dataset_strategy(),
        window in 2usize..6,
    ) {
        let snm = SortedNeighborhood { keys: vec![0, 1], window };
        let materialized = snm.candidates(&data);
        let gold = data.gold_pairs();
        let mut sink = QualitySink::new(&gold);
        snm.stream_into(&data, &mut sink);
        let found = gold.iter().filter(|p| materialized.contains(p)).count();
        prop_assert_eq!(sink.gold_hits(), found);
        let mut collector = PairCollector::new();
        snm.stream_into(&data, &mut collector);
        prop_assert_eq!(collector.finish_set(), materialized);
    }
}
