//! Property-based tests on blocking and evaluation invariants.

use std::collections::HashSet;

use nc_detect::blocking::{blocking_quality, Blocker, FullPairwise, SortedNeighborhood, StandardBlocking};
use nc_detect::classify::{transitive_closure, ScoredPair};
use nc_detect::dataset::{Dataset, Pair};
use nc_detect::eval::{evaluate, linspace, threshold_sweep, PrF};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(("[A-E]{1,4}", "[A-E]{1,4}", 0usize..6), 2..30).prop_map(|rows| {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for (a, b, cluster) in rows {
            d.push(vec![a, b], cluster);
        }
        d
    })
}

proptest! {
    /// Every blocker's candidate set is a subset of the full pairwise
    /// enumeration, and pairs are well-formed (i < j, in range).
    #[test]
    fn candidates_are_valid_pairs(data in dataset_strategy(), window in 2usize..8) {
        let full = FullPairwise.candidates(&data);
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(StandardBlocking { key: 0 }),
            Box::new(SortedNeighborhood { keys: vec![0, 1], window }),
        ];
        for blocker in &blockers {
            let cands = blocker.candidates(&data);
            for p in &cands {
                prop_assert!(p.0 < p.1);
                prop_assert!(p.1 < data.len());
                prop_assert!(full.contains(p));
            }
        }
    }

    /// Growing the SNM window never loses candidates.
    #[test]
    fn snm_window_is_monotone(data in dataset_strategy(), w in 2usize..6) {
        let small = SortedNeighborhood { keys: vec![0], window: w }.candidates(&data);
        let large = SortedNeighborhood { keys: vec![0], window: w + 3 }.candidates(&data);
        prop_assert!(small.is_subset(&large));
    }

    /// Blocking quality metrics are well-formed.
    #[test]
    fn quality_metrics_bounded(data in dataset_strategy(), window in 2usize..8) {
        let c = SortedNeighborhood { keys: vec![0], window }.candidates(&data);
        let q = blocking_quality(&data, &c);
        prop_assert!((0.0..=1.0).contains(&q.reduction_ratio));
        prop_assert!((0.0..=1.0).contains(&q.pair_completeness));
        prop_assert_eq!(q.candidates, c.len());
    }

    /// Precision and recall are in [0, 1] and F1 is their harmonic mean.
    #[test]
    fn prf_invariants(tp in 0usize..50, extra_pred in 0usize..50, extra_gold in 0usize..50) {
        let prf = PrF::from_counts(tp, tp + extra_pred, tp + extra_gold);
        prop_assert!((0.0..=1.0).contains(&prf.precision));
        prop_assert!((0.0..=1.0).contains(&prf.recall));
        prop_assert!((0.0..=1.0).contains(&prf.f1));
        if prf.precision + prf.recall > 0.0 {
            let hm = 2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
            prop_assert!((prf.f1 - hm).abs() < 1e-12);
        }
    }

    /// Recall is non-increasing in the threshold over any scored list.
    #[test]
    fn sweep_recall_monotone(
        scores in proptest::collection::vec(0.0f64..1.0, 1..40),
        gold_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut scored: Vec<ScoredPair> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoredPair { pair: Pair::new(2 * i, 2 * i + 1), score: s })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));
        let gold: HashSet<Pair> = scored
            .iter()
            .zip(gold_mask.iter().cycle())
            .filter(|(_, &g)| g)
            .map(|(s, _)| s.pair)
            .collect();
        let points = threshold_sweep(&scored, &gold, &linspace(0.0, 1.0, 11));
        for w in points.windows(2) {
            prop_assert!(w[0].prf.recall >= w[1].prf.recall - 1e-12);
        }
        // Threshold 0 predicts everything.
        prop_assert_eq!(points[0].prf.recall, 1.0);
    }

    /// The sweep agrees with direct evaluation at every threshold.
    #[test]
    fn sweep_agrees_with_direct_eval(
        scores in proptest::collection::vec(0.0f64..1.0, 1..30),
        t in 0.0f64..1.0,
    ) {
        let mut scored: Vec<ScoredPair> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoredPair { pair: Pair::new(2 * i, 2 * i + 1), score: s })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));
        let gold: HashSet<Pair> = scored.iter().take(5).map(|s| s.pair).collect();
        let fast = threshold_sweep(&scored, &gold, &[t])[0].prf;
        let predicted: HashSet<Pair> = scored
            .iter()
            .filter(|s| s.score >= t)
            .map(|s| s.pair)
            .collect();
        let slow = evaluate(&predicted, &gold);
        prop_assert!((fast.precision - slow.precision).abs() < 1e-12);
        prop_assert!((fast.recall - slow.recall).abs() < 1e-12);
    }

    /// Transitive closure is idempotent and only adds pairs.
    #[test]
    fn closure_is_idempotent_superset(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..20),
    ) {
        let pairs: HashSet<Pair> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Pair::new(a, b))
            .collect();
        let once = transitive_closure(12, &pairs);
        prop_assert!(pairs.is_subset(&once));
        let twice = transitive_closure(12, &once);
        prop_assert_eq!(once, twice);
    }
}
