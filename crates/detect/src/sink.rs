//! Streaming candidate emission.
//!
//! The original `Blocker` API materialized every candidate set as a
//! `HashSet<Pair>` — at 10M records a multi-pass blocking run emits
//! hundreds of millions of pairs, and a hash insert per pair (plus the
//! table itself) dominates candidate generation. This module inverts
//! the flow: blockers *push* pairs into a [`CandidateSink`] as they are
//! discovered, and the sink decides what to keep. A sink can
//! deduplicate ([`PairCollector`]), count ([`CountingSink`]), measure
//! recall against a gold standard without storing anything
//! ([`QualitySink`]), or hand each pair straight to a matcher (see
//! [`crate::eval::score_candidates_streaming`]).
//!
//! [`PairCollector`] packs each pair into a `u64` and deduplicates by
//! periodic sort-and-dedup compaction of a flat buffer (a sorted-run
//! strategy), so the steady state is two machine words per distinct
//! pair and no per-pair allocation or hashing.

use std::collections::HashSet;

use crate::dataset::Pair;

/// A consumer of candidate pairs.
///
/// Implementations must tolerate duplicate pushes: most blockers emit
/// a pair once, but multi-pass strategies (and any union of passes)
/// rediscover pairs. Pushing is infallible by design — sinks that can
/// saturate should record that state and ignore further pushes.
pub trait CandidateSink {
    /// Offer one candidate pair (already normalized, `0 < 1`).
    fn push(&mut self, pair: Pair);
}

/// The compatibility sink: exact `HashSet<Pair>` semantics.
impl CandidateSink for HashSet<Pair> {
    fn push(&mut self, pair: Pair) {
        self.insert(pair);
    }
}

/// A raw sink keeping every emission, duplicates included (useful for
/// tests and for blockers known to emit distinct pairs).
impl CandidateSink for Vec<Pair> {
    fn push(&mut self, pair: Pair) {
        Vec::push(self, pair);
    }
}

/// Pack a pair into one `u64` (`a` in the high half). Record ids must
/// fit `u32` — the indexed blocking layer addresses records as `u32`
/// throughout.
#[inline]
pub(crate) fn pack(pair: Pair) -> u64 {
    debug_assert!(pair.0 <= u32::MAX as usize && pair.1 <= u32::MAX as usize);
    ((pair.0 as u64) << 32) | pair.1 as u64
}

#[inline]
pub(crate) fn unpack(packed: u64) -> Pair {
    Pair((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize)
}

/// An allocation-lean deduplicating sink.
///
/// Pairs are packed into a flat `Vec<u64>`; whenever the buffer grows
/// past a compaction watermark it is sorted and deduplicated in place
/// and the watermark is re-armed at twice the distinct count. Total
/// cost is `O(total pushed · log(distinct))` amortized, memory is
/// `O(distinct)` — no hashing, no per-pair allocation.
#[derive(Debug, Default)]
pub struct PairCollector {
    packed: Vec<u64>,
    /// Buffer length that triggers the next compaction.
    watermark: usize,
    /// Total pushes observed (duplicates included).
    emitted: u64,
}

/// Compactions start once the buffer holds this many packed pairs.
const MIN_WATERMARK: usize = 1 << 16;

impl PairCollector {
    /// An empty collector.
    pub fn new() -> Self {
        PairCollector {
            packed: Vec::new(),
            watermark: MIN_WATERMARK,
            emitted: 0,
        }
    }

    fn compact(&mut self) {
        self.packed.sort_unstable();
        self.packed.dedup();
        self.watermark = (self.packed.len() * 2).max(MIN_WATERMARK);
    }

    /// Total pushes observed, duplicates included.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Finish: the distinct candidate pairs in ascending `(a, b)` order.
    pub fn finish(mut self) -> Vec<Pair> {
        self.compact();
        self.packed.iter().map(|&p| unpack(p)).collect()
    }

    /// Finish into the distinct candidate count alone.
    pub fn finish_count(mut self) -> usize {
        self.compact();
        self.packed.len()
    }

    /// Finish into a `HashSet<Pair>` (compatibility shim).
    pub fn finish_set(mut self) -> HashSet<Pair> {
        self.compact();
        self.packed.iter().map(|&p| unpack(p)).collect()
    }
}

impl CandidateSink for PairCollector {
    fn push(&mut self, pair: Pair) {
        self.emitted += 1;
        self.packed.push(pack(pair));
        if self.packed.len() >= self.watermark {
            self.compact();
        }
    }
}

/// Counts emissions without storing anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Pairs pushed, duplicates included.
    pub emitted: u64,
}

impl CandidateSink for CountingSink {
    fn push(&mut self, _pair: Pair) {
        self.emitted += 1;
    }
}

/// Measures pair completeness against a gold standard in a streaming
/// pass: memory is bounded by the gold set, never by the candidate
/// volume.
#[derive(Debug)]
pub struct QualitySink<'a> {
    gold: &'a HashSet<Pair>,
    hits: HashSet<Pair>,
    /// Pairs pushed, duplicates included.
    pub emitted: u64,
}

impl<'a> QualitySink<'a> {
    /// A sink scoring emissions against `gold`.
    pub fn new(gold: &'a HashSet<Pair>) -> Self {
        QualitySink {
            gold,
            hits: HashSet::new(),
            emitted: 0,
        }
    }

    /// Distinct gold pairs seen so far.
    pub fn gold_hits(&self) -> usize {
        self.hits.len()
    }

    /// Fraction of gold pairs emitted at least once (1 when the gold
    /// set is empty, matching [`crate::blocking::blocking_quality`]).
    pub fn completeness(&self) -> f64 {
        if self.gold.is_empty() {
            1.0
        } else {
            self.hits.len() as f64 / self.gold.len() as f64
        }
    }
}

impl CandidateSink for QualitySink<'_> {
    fn push(&mut self, pair: Pair) {
        self.emitted += 1;
        if self.gold.contains(&pair) {
            self.hits.insert(pair);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for pair in [Pair(0, 1), Pair(7, 4_000_000_000), Pair(123, 456)] {
            assert_eq!(unpack(pack(pair)), pair);
        }
    }

    #[test]
    fn collector_deduplicates_and_sorts() {
        let mut c = PairCollector::new();
        for &(a, b) in &[(3, 4), (1, 2), (3, 4), (0, 9), (1, 2), (1, 2)] {
            c.push(Pair(a, b));
        }
        assert_eq!(c.emitted(), 6);
        assert_eq!(c.finish(), vec![Pair(0, 9), Pair(1, 2), Pair(3, 4)]);
    }

    #[test]
    fn collector_compacts_past_watermark() {
        let mut c = PairCollector::new();
        // 3× the minimum watermark pushes over only 100 distinct pairs:
        // the buffer must stay near the distinct count, not the total.
        for i in 0..(3 * MIN_WATERMARK) {
            c.push(Pair(i % 100, 100 + i % 7));
        }
        assert!(c.packed.capacity() <= 4 * MIN_WATERMARK);
        let pairs = c.finish();
        // (i % 100, i % 7) cycles with period lcm(100, 7) = 700.
        assert_eq!(pairs.len(), 700);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn collector_set_matches_hashset_semantics() {
        let mut set = HashSet::new();
        let mut c = PairCollector::new();
        for i in 0..1000usize {
            let p = Pair(i % 13, 13 + i % 29);
            set.push(p);
            c.push(p);
        }
        assert_eq!(c.finish_set(), set);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.push(Pair(0, 1));
        s.push(Pair(0, 1));
        assert_eq!(s.emitted, 2);
    }

    #[test]
    fn quality_sink_measures_completeness() {
        let gold: HashSet<Pair> = [Pair(0, 1), Pair(2, 3)].into();
        let mut s = QualitySink::new(&gold);
        s.push(Pair(0, 1));
        s.push(Pair(0, 1));
        s.push(Pair(5, 6));
        assert_eq!(s.emitted, 3);
        assert_eq!(s.gold_hits(), 1);
        assert!((s.completeness() - 0.5).abs() < 1e-12);
        let empty = HashSet::new();
        assert_eq!(QualitySink::new(&empty).completeness(), 1.0);
    }
}
