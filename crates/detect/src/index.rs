//! Indexed candidate generation: inverted q-gram / token indexes,
//! phonetic buckets and a sparse gram-frequency-vector index.
//!
//! Every blocker here follows the same shape: **build** an inverted
//! index over normalized key values ([`TermIndex`]) in one pass, then
//! **probe** it record by record in ascending id order, emitting each
//! candidate pair exactly once (`Pair(j, i)` is owned by its larger
//! id `i`, with the smaller ids deduplicated through a per-record
//! sorted run). Because emission order is a pure function of the
//! record order, the parallel probe — contiguous record ranges over a
//! scoped crossbeam pool, buffers concatenated in range order — is
//! bit-identical to the sequential one for every thread count. The
//! `threads: 0` sentinel resolves to the available hardware
//! parallelism, following the `nc_core::scoring::ScoringConfig`
//! convention.
//!
//! Stop-gram pruning ([`StopPolicy`]) bounds the candidate tail: a
//! term whose document frequency exceeds the cap is skipped at probe
//! time on both sides of a pair, trading a little recall on records
//! that share *only* ubiquitous terms for candidate counts that stay
//! sub-linear in the dataset (the fraction of grams under an absolute
//! cap shrinks as the dataset grows).

use std::collections::HashSet;

use nc_similarity::soundex::soundex;

use crate::blocking::StreamBlocker;
use crate::dataset::{Dataset, Pair};
use crate::postings::{intersect_gallop, union_weighted, TermIndex};
use crate::sink::CandidateSink;

// ---------------------------------------------------------------------
// Normalized key views
// ---------------------------------------------------------------------

/// Append the blocking normalization of `raw` (trim, uppercase) to
/// `out`, with an ASCII fast path that never allocates per `char`.
pub(crate) fn normalize_into(raw: &str, out: &mut String) {
    let trimmed = raw.trim();
    if trimmed.is_ascii() {
        out.reserve(trimmed.len());
        for &b in trimmed.as_bytes() {
            out.push(b.to_ascii_uppercase() as char);
        }
    } else {
        // Matches `str::to_uppercase` (incl. multi-char expansions).
        for c in trimmed.chars() {
            out.extend(c.to_uppercase());
        }
    }
}

/// A normalized (trimmed, uppercased) view of one attribute column,
/// computed once per dataset instead of once per record visit. Values
/// are stored back to back in a single buffer.
#[derive(Debug)]
pub struct NormalizedKey {
    buf: String,
    /// `offsets[i]..offsets[i + 1]` is the normalized value of record `i`.
    offsets: Vec<u32>,
}

impl NormalizedKey {
    /// Normalize attribute `key` of every record.
    ///
    /// # Panics
    /// When `key` is out of schema range.
    pub fn build(data: &Dataset, key: usize) -> Self {
        assert!(key < data.num_attrs(), "key attribute out of range");
        let mut buf = String::new();
        let mut offsets = Vec::with_capacity(data.len() + 1);
        offsets.push(0);
        for r in &data.records {
            normalize_into(&r.values[key], &mut buf);
            offsets.push(u32::try_from(buf.len()).expect("normalized column exceeds 4 GiB"));
        }
        NormalizedKey { buf, offsets }
    }

    /// The normalized value of record `i`.
    pub fn value(&self, i: usize) -> &str {
        &self.buf[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of records in the view.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the view covers no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Visit every q-gram of a normalized value as a byte slice: windows of
/// `q` characters (byte windows on the ASCII fast path), the whole
/// value when it is shorter than `q` chars, nothing when empty.
/// Duplicate grams are visited once per occurrence — the index
/// collapses them into counts.
pub(crate) fn for_each_gram(value: &str, q: usize, mut f: impl FnMut(&[u8])) {
    let q = q.max(1);
    if value.is_empty() {
        return;
    }
    let bytes = value.as_bytes();
    if value.is_ascii() {
        if bytes.len() < q {
            f(bytes);
        } else {
            for w in bytes.windows(q) {
                f(w);
            }
        }
        return;
    }
    let bounds: Vec<usize> = value
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(value.len()))
        .collect();
    let chars = bounds.len() - 1;
    if chars < q {
        f(bytes);
    } else {
        for s in 0..=(chars - q) {
            f(&bytes[bounds[s]..bounds[s + q]]);
        }
    }
}

// ---------------------------------------------------------------------
// Stop-term policy and probe parallelism
// ---------------------------------------------------------------------

/// When a term is too frequent to block on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopPolicy {
    /// Skip terms posted by more than `ceil(fraction · n)` records
    /// (floored at 2 so a pair can always form) — the historical
    /// `QGramBlocking::max_block_fraction` semantics. Under this policy
    /// block capacity grows with the dataset, and so does the
    /// worst-case candidate tail (O(n²) within capped blocks).
    Fraction(f64),
    /// Skip terms posted by more than this many records regardless of
    /// dataset size. This is the scale-safe policy: per-record probe
    /// work stays bounded as `n` grows.
    Absolute(usize),
    /// Never skip a term.
    None,
}

impl StopPolicy {
    /// The document-frequency cap for a dataset of `n` records.
    pub fn cap(&self, n: usize) -> usize {
        match *self {
            StopPolicy::Fraction(f) => ((n as f64 * f).ceil() as usize).max(2),
            StopPolicy::Absolute(cap) => cap.max(2),
            StopPolicy::None => usize::MAX,
        }
    }
}

/// Resolve a `threads: 0` sentinel the way `ScoringConfig` does.
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Probe records `0..n` and stream the emitted pairs into `sink` in
/// ascending record order.
///
/// `per_record(scratch, i, out)` must append record `i`'s candidate
/// pairs to `out` as a pure function of `i` (the scratch only moves
/// working memory). With more than one thread the id range is split
/// into contiguous chunks probed concurrently, each worker owning one
/// scratch, and the chunk buffers are drained into the sink in chunk
/// order — the sink observes exactly the sequential emission sequence,
/// so parallel output is bit-identical to `threads = 1`.
fn probe_streamed<S, F>(n: usize, threads: usize, make_scratch: impl Fn() -> S + Sync, per_record: F, sink: &mut dyn CandidateSink)
where
    S: Send,
    F: Fn(&mut S, usize, &mut Vec<Pair>) + Sync,
{
    let threads = effective_threads(threads).min(n).max(1);
    if threads <= 1 {
        let mut scratch = make_scratch();
        let mut out = Vec::new();
        for i in 0..n {
            per_record(&mut scratch, i, &mut out);
            for &p in &out {
                sink.push(p);
            }
            out.clear();
        }
        return;
    }
    let chunk_len = n.div_ceil(threads);
    let chunks: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk_len)
        .map(|lo| lo..(lo + chunk_len).min(n))
        .collect();
    let buffers: Vec<Vec<Pair>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .cloned()
            .map(|range| {
                let per_record = &per_record;
                let make_scratch = &make_scratch;
                scope.spawn(move |_| {
                    let mut scratch = make_scratch();
                    let mut out = Vec::new();
                    for i in range {
                        per_record(&mut scratch, i, &mut out);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe worker panicked"))
            .collect()
    })
    .expect("probe pool panicked");
    for buffer in buffers {
        for p in buffer {
            sink.push(p);
        }
    }
}

// ---------------------------------------------------------------------
// q-gram index
// ---------------------------------------------------------------------

/// A reusable q-gram inverted index over one key attribute.
///
/// Build once with [`QGramIndex::build`], probe many times (the
/// blockers below build per call to stay drop-in `Blocker`s; long-lived
/// pipelines should hold the index).
#[derive(Debug)]
pub struct QGramIndex {
    index: TermIndex,
    /// Total gram occurrences per record (multiset size).
    totals: Vec<u32>,
    q: usize,
}

impl QGramIndex {
    /// Index attribute `key` of every record with grams of `q` chars.
    pub fn build(data: &Dataset, key: usize, q: usize) -> Self {
        assert!(data.len() <= u32::MAX as usize, "indexes address records as u32");
        let view = NormalizedKey::build(data, key);
        let mut index = TermIndex::new();
        let mut totals = Vec::with_capacity(data.len());
        for i in 0..view.len() {
            index.open_record(i as u32);
            let mut total = 0u32;
            for_each_gram(view.value(i), q, |g| {
                index.insert(g);
                total += 1;
            });
            index.close_record();
            totals.push(total);
        }
        QGramIndex { index, totals, q }
    }

    /// The gram size the index was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Distinct grams indexed.
    pub fn terms(&self) -> usize {
        self.index.terms()
    }

    /// Records indexed.
    pub fn records(&self) -> usize {
        self.index.records()
    }

    /// Gram occurrences (with multiplicity) of record `i`.
    pub fn total_grams(&self, i: usize) -> u32 {
        self.totals[i]
    }

    /// Append the ids `j < i` sharing at least one un-capped gram with
    /// record `i` to `out` (sorted, distinct).
    fn neighbors_below(&self, i: usize, cap: usize, out: &mut Vec<u32>) {
        out.clear();
        let i32id = i as u32;
        for (slot, _) in self.index.record_terms(i32id) {
            if self.index.df(slot) > cap {
                continue;
            }
            let p = self.index.posting(slot);
            let below = &p[..p.partition_point(|&j| j < i32id)];
            out.extend_from_slice(below);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Append `(j, overlap)` for all `j < i`, where `overlap` is the
    /// multiset gram overlap `Σ_g min(count_i(g), count_j(g))` over
    /// un-capped grams, to `out` in ascending `j` order.
    fn overlaps_below(&self, i: usize, cap: usize, entries: &mut Vec<(u32, u32)>, out: &mut Vec<(u32, u32)>) {
        entries.clear();
        out.clear();
        let i32id = i as u32;
        for (slot, count_i) in self.index.record_terms(i32id) {
            if self.index.df(slot) > cap {
                continue;
            }
            let p = self.index.posting(slot);
            let c = self.index.posting_counts(slot);
            let k = p.partition_point(|&j| j < i32id);
            for (&j, &count_j) in p[..k].iter().zip(&c[..k]) {
                entries.push((j, count_i.min(count_j)));
            }
        }
        union_weighted(entries, |j, overlap| out.push((j, overlap)));
    }
}

// ---------------------------------------------------------------------
// Blockers
// ---------------------------------------------------------------------

/// Indexed q-gram blocking: two records are candidates when they share
/// at least one gram whose document frequency is under the stop cap.
///
/// With `StopPolicy::Fraction` this emits exactly the candidate set of
/// the scan-based [`crate::qgram_blocking::QGramBlocking`] (property-
/// tested), but streams distinct pairs through the index instead of
/// materializing blocks.
#[derive(Debug, Clone)]
pub struct IndexedQGramBlocker {
    /// Index of the blocking-key attribute.
    pub key: usize,
    /// Gram size in chars.
    pub q: usize,
    /// Stop-gram policy.
    pub stop: StopPolicy,
    /// Probe workers; `0` = available parallelism.
    pub threads: usize,
}

impl IndexedQGramBlocker {
    /// Trigram blocking with the historical 5 % fraction cap.
    pub fn trigrams(key: usize) -> Self {
        IndexedQGramBlocker {
            key,
            q: 3,
            stop: StopPolicy::Fraction(0.05),
            threads: 1,
        }
    }

    /// Trigram blocking with a scale-safe absolute stop cap.
    pub fn trigrams_capped(key: usize, cap: usize) -> Self {
        IndexedQGramBlocker {
            key,
            q: 3,
            stop: StopPolicy::Absolute(cap),
            threads: 1,
        }
    }
}

impl StreamBlocker for IndexedQGramBlocker {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let ix = QGramIndex::build(data, self.key, self.q);
        let cap = self.stop.cap(data.len());
        probe_streamed(
            data.len(),
            self.threads,
            Vec::new,
            |ids: &mut Vec<u32>, i, out| {
                ix.neighbors_below(i, cap, ids);
                out.extend(ids.iter().map(|&j| Pair(j as usize, i)));
            },
            sink,
        );
    }

    fn emits_distinct(&self) -> bool {
        true
    }
}

/// Token blocking over one or more key attributes: candidates share at
/// least `min_overlap` distinct (un-capped) whitespace tokens.
///
/// A probe record whose entire token set must match (`min_overlap >=`
/// its distinct token count) is resolved by galloping multi-way
/// intersection of its posting lists; the general case runs a counting
/// union.
#[derive(Debug, Clone)]
pub struct IndexedTokenBlocker {
    /// Key attribute indices; tokens of all keys share one term space.
    pub keys: Vec<usize>,
    /// Minimum number of shared distinct tokens.
    pub min_overlap: usize,
    /// Stop-token policy.
    pub stop: StopPolicy,
    /// Probe workers; `0` = available parallelism.
    pub threads: usize,
}

impl IndexedTokenBlocker {
    /// Single-shared-token blocking over the given keys with an
    /// absolute stop cap.
    pub fn any_token(keys: Vec<usize>, cap: usize) -> Self {
        IndexedTokenBlocker {
            keys,
            min_overlap: 1,
            stop: StopPolicy::Absolute(cap),
            threads: 1,
        }
    }

    fn build(&self, data: &Dataset) -> TermIndex {
        assert!(data.len() <= u32::MAX as usize, "indexes address records as u32");
        assert!(!self.keys.is_empty(), "token blocking needs at least one key");
        let views: Vec<NormalizedKey> = self
            .keys
            .iter()
            .map(|&k| NormalizedKey::build(data, k))
            .collect();
        let mut index = TermIndex::new();
        for i in 0..data.len() {
            index.open_record(i as u32);
            for view in &views {
                for token in view.value(i).split_whitespace() {
                    index.insert(token.as_bytes());
                }
            }
            index.close_record();
        }
        index
    }
}

/// Per-worker scratch of the token probe.
#[derive(Default)]
struct TokenScratch {
    slots: Vec<u32>,
    entries: Vec<(u32, u32)>,
    acc: Vec<u32>,
    tmp: Vec<u32>,
}

impl StreamBlocker for IndexedTokenBlocker {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let ix = self.build(data);
        let cap = self.stop.cap(data.len());
        let min_overlap = self.min_overlap.max(1);
        probe_streamed(
            data.len(),
            self.threads,
            TokenScratch::default,
            |s: &mut TokenScratch, i, out| {
                let i32id = i as u32;
                s.slots.clear();
                s.slots
                    .extend(ix.record_terms(i32id).map(|(slot, _)| slot).filter(|&t| ix.df(t) <= cap));
                if s.slots.len() < min_overlap {
                    return;
                }
                if s.slots.len() == min_overlap {
                    // AND query: every token must match — galloping
                    // intersection, smallest posting first.
                    s.slots.sort_unstable_by_key(|&t| ix.df(t));
                    s.acc.clear();
                    let first = ix.posting(s.slots[0]);
                    s.acc.extend_from_slice(&first[..first.partition_point(|&j| j < i32id)]);
                    for &slot in &s.slots[1..] {
                        if s.acc.is_empty() {
                            break;
                        }
                        s.tmp.clear();
                        let p = ix.posting(slot);
                        intersect_gallop(&s.acc, &p[..p.partition_point(|&j| j < i32id)], &mut s.tmp);
                        std::mem::swap(&mut s.acc, &mut s.tmp);
                    }
                    out.extend(s.acc.iter().map(|&j| Pair(j as usize, i)));
                } else {
                    s.entries.clear();
                    for &slot in &s.slots {
                        let p = ix.posting(slot);
                        for &j in &p[..p.partition_point(|&j| j < i32id)] {
                            s.entries.push((j, 1));
                        }
                    }
                    let min = min_overlap as u32;
                    union_weighted(&mut s.entries, |j, shared| {
                        if shared >= min {
                            out.push(Pair(j as usize, i));
                        }
                    });
                }
            },
            sink,
        );
    }

    fn emits_distinct(&self) -> bool {
        true
    }
}

/// Phonetic blocking: candidates share the Soundex code of the key
/// attribute (reusing `nc_similarity::soundex`). Records without a
/// code (no ASCII letter) join no bucket; buckets over the stop cap
/// are skipped like any other term.
#[derive(Debug, Clone)]
pub struct SoundexBlocker {
    /// Index of the blocking-key attribute.
    pub key: usize,
    /// Stop-bucket policy.
    pub stop: StopPolicy,
    /// Probe workers; `0` = available parallelism.
    pub threads: usize,
}

impl SoundexBlocker {
    /// Soundex buckets on `key` with an absolute stop cap.
    pub fn new(key: usize, cap: usize) -> Self {
        SoundexBlocker {
            key,
            stop: StopPolicy::Absolute(cap),
            threads: 1,
        }
    }
}

impl StreamBlocker for SoundexBlocker {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        assert!(data.len() <= u32::MAX as usize, "indexes address records as u32");
        let view = NormalizedKey::build(data, self.key);
        let mut index = TermIndex::new();
        for i in 0..view.len() {
            index.open_record(i as u32);
            if let Some(code) = soundex(view.value(i)) {
                index.insert(code.as_bytes());
            }
            index.close_record();
        }
        let cap = self.stop.cap(data.len());
        probe_streamed(
            data.len(),
            self.threads,
            || (),
            |_, i, out| {
                let i32id = i as u32;
                // At most one code per record — already distinct.
                for (slot, _) in index.record_terms(i32id) {
                    if index.df(slot) > cap {
                        continue;
                    }
                    let p = index.posting(slot);
                    for &j in &p[..p.partition_point(|&j| j < i32id)] {
                        out.push(Pair(j as usize, i));
                    }
                }
            },
            sink,
        );
    }

    fn emits_distinct(&self) -> bool {
        true
    }
}

/// The candidate bound of the frequency-vector index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverlapBound {
    /// Candidates must share at least `ratio · min(|a|, |b|)` grams
    /// (multiset overlap over gram counts), and at least one. A soft,
    /// tunable bound for fuzzy lookup.
    Ratio(f64),
    /// The classic q-gram count filter: an (Damerau-)edit distance of
    /// at most `k` destroys at most `k · q` grams, so candidates must
    /// share at least `max(|a|, |b|) − k·q` grams. With
    /// `StopPolicy::None` this never dismisses a true match within the
    /// distance, **provided the values are long enough that `k` edits
    /// cannot destroy every gram** (`max(|a|, |b|) − k·q ≥ 1`) — a
    /// zero-overlap pair shares no posting list and cannot be
    /// discovered by any index. Stop-pruning additionally trades the
    /// guarantee for scale.
    EditDistance(usize),
}

/// Sparse gram-frequency-vector blocking: records are multisets of
/// q-gram counts, and a pair survives only when the count-overlap
/// lower bound of [`OverlapBound`] holds — non-candidates are rejected
/// from posting arithmetic alone, without a single string comparison.
#[derive(Debug, Clone)]
pub struct FreqVectorBlocker {
    /// Index of the blocking-key attribute.
    pub key: usize,
    /// Gram size in chars.
    pub q: usize,
    /// The candidate bound.
    pub bound: OverlapBound,
    /// Stop-gram policy.
    pub stop: StopPolicy,
    /// Probe workers; `0` = available parallelism.
    pub threads: usize,
}

impl FreqVectorBlocker {
    /// Trigram count vectors admitting pairs within edit distance `k`,
    /// stop-capped at `cap`.
    pub fn within_edits(key: usize, k: usize, cap: usize) -> Self {
        FreqVectorBlocker {
            key,
            q: 3,
            bound: OverlapBound::EditDistance(k),
            stop: StopPolicy::Absolute(cap),
            threads: 1,
        }
    }

    fn min_overlap(&self, ta: u32, tb: u32) -> u32 {
        match self.bound {
            OverlapBound::Ratio(r) => ((r * ta.min(tb) as f64).ceil() as u32).max(1),
            OverlapBound::EditDistance(k) => {
                let destroyed = (k * self.q) as u32;
                ta.max(tb).saturating_sub(destroyed).max(1)
            }
        }
    }
}

/// Reusable per-worker scratch of the frequency-vector probe: raw
/// `(id, weight)` entries and the merged `(id, overlap)` runs.
type OverlapScratch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

impl StreamBlocker for FreqVectorBlocker {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let ix = QGramIndex::build(data, self.key, self.q);
        let cap = self.stop.cap(data.len());
        probe_streamed(
            data.len(),
            self.threads,
            || (Vec::new(), Vec::new()),
            |(entries, overlaps): &mut OverlapScratch, i, out| {
                ix.overlaps_below(i, cap, entries, overlaps);
                let ti = ix.total_grams(i);
                for &(j, overlap) in overlaps.iter() {
                    if overlap >= self.min_overlap(ti, ix.total_grams(j as usize)) {
                        out.push(Pair(j as usize, i));
                    }
                }
            },
            sink,
        );
    }

    fn emits_distinct(&self) -> bool {
        true
    }
}

/// A union of blocking passes streaming into one sink — the indexed
/// counterpart of multi-pass Sorted Neighborhood. Pairs discovered by
/// several passes are emitted once per pass; deduplicate downstream
/// (e.g. through a [`crate::sink::PairCollector`]).
pub struct CompositeBlocker {
    passes: Vec<Box<dyn StreamBlocker + Send + Sync>>,
}

impl CompositeBlocker {
    /// A composite over the given passes, run in order.
    pub fn new(passes: Vec<Box<dyn StreamBlocker + Send + Sync>>) -> Self {
        CompositeBlocker { passes }
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the composite has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }
}

impl std::fmt::Debug for CompositeBlocker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeBlocker").field("passes", &self.passes.len()).finish()
    }
}

impl StreamBlocker for CompositeBlocker {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        for pass in &self.passes {
            pass.stream_into(data, sink);
        }
    }
}

/// Convenience: collect a streaming blocker's distinct candidates into
/// a `HashSet<Pair>` (the compatibility path used by the blanket
/// [`crate::blocking::Blocker`] impl).
pub fn collect_candidates(blocker: &dyn StreamBlocker, data: &Dataset) -> HashSet<Pair> {
    let mut set = HashSet::new();
    blocker.stream_into(data, &mut set);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{blocking_quality, Blocker};
    use crate::qgram_blocking::QGramBlocking;
    use crate::sink::PairCollector;

    fn typo_data() -> Dataset {
        let mut d = Dataset::new(vec!["last".into(), "city".into()]);
        d.push(vec!["WILLIAMS".into(), "RALEIGH".into()], 0);
        d.push(vec!["WILLAMS".into(), "RALEIGH".into()], 0);
        d.push(vec!["JOHNSON".into(), "DURHAM".into()], 1);
        d.push(vec!["JOHNSTON".into(), "DURHAM".into()], 1);
        d.push(vec!["ZQXV".into(), "APEX".into()], 2);
        d
    }

    #[test]
    fn normalized_view_matches_per_record_normalization() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["  smith ".into()], 0);
        d.push(vec!["Größe".into()], 1);
        d.push(vec!["".into()], 2);
        let view = NormalizedKey::build(&d, 0);
        assert_eq!(view.value(0), "SMITH");
        assert_eq!(view.value(1), "Größe".trim().to_uppercase());
        assert_eq!(view.value(2), "");
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn grams_ascii_and_unicode_agree_with_char_windows() {
        for value in ["SMITH", "ABÖCD", "ÄÖ", "A", ""] {
            let mut fast = Vec::new();
            for_each_gram(value, 3, |g| fast.push(g.to_vec()));
            let chars: Vec<char> = value.chars().collect();
            let slow: Vec<Vec<u8>> = if chars.is_empty() {
                vec![]
            } else if chars.len() < 3 {
                vec![value.as_bytes().to_vec()]
            } else {
                chars.windows(3).map(|w| w.iter().collect::<String>().into_bytes()).collect()
            };
            assert_eq!(fast, slow, "{value:?}");
        }
    }

    #[test]
    fn indexed_qgram_matches_scan_qgram() {
        let d = typo_data();
        let scan = QGramBlocking::trigrams(0).candidates(&d);
        let indexed = IndexedQGramBlocker::trigrams(0).candidates(&d);
        assert_eq!(scan, indexed);
        let q = blocking_quality(&d, &indexed);
        assert_eq!(q.pair_completeness, 1.0);
    }

    #[test]
    fn stop_policy_caps() {
        assert_eq!(StopPolicy::Fraction(0.05).cap(100), 5);
        assert_eq!(StopPolicy::Fraction(0.05).cap(10), 2);
        assert_eq!(StopPolicy::Absolute(1).cap(1_000_000), 2);
        assert_eq!(StopPolicy::Absolute(64).cap(10), 64);
        assert_eq!(StopPolicy::None.cap(10), usize::MAX);
    }

    #[test]
    fn absolute_cap_prunes_common_grams() {
        let mut d = Dataset::new(vec!["v".into()]);
        for i in 0..50 {
            d.push(vec![format!("AAA{i:03}")], i);
        }
        let capped = IndexedQGramBlocker::trigrams_capped(0, 4).candidates(&d);
        let uncapped = IndexedQGramBlocker {
            key: 0,
            q: 3,
            stop: StopPolicy::None,
            threads: 1,
        }
        .candidates(&d);
        assert_eq!(uncapped.len(), 50 * 49 / 2, "shared AAA joins everything");
        assert!(capped.len() < uncapped.len() / 10, "{}", capped.len());
    }

    #[test]
    fn token_blocker_finds_shared_tokens() {
        let mut d = Dataset::new(vec!["name".into()]);
        d.push(vec!["MARY ANN SMITH".into()], 0);
        d.push(vec!["SMITH MARY".into()], 0);
        d.push(vec!["JOHN DOE".into()], 1);
        d.push(vec!["JANE DOE".into()], 1);
        d.push(vec!["UNRELATED".into()], 2);
        let one = IndexedTokenBlocker::any_token(vec![0], 64).candidates(&d);
        assert!(one.contains(&Pair(0, 1)));
        assert!(one.contains(&Pair(2, 3)));
        assert!(!one.iter().any(|p| p.0 == 4 || p.1 == 4));
        let two = IndexedTokenBlocker {
            keys: vec![0],
            min_overlap: 2,
            stop: StopPolicy::None,
            threads: 1,
        }
        .candidates(&d);
        assert!(two.contains(&Pair(0, 1)), "MARY + SMITH shared");
        assert!(!two.contains(&Pair(2, 3)), "only DOE shared");
    }

    #[test]
    fn token_and_query_equals_counting_path() {
        // min_overlap == distinct tokens of the probe → AND fast path;
        // must agree with the counting union on the same data.
        let mut d = Dataset::new(vec!["name".into()]);
        d.push(vec!["ALPHA BETA".into()], 0);
        d.push(vec!["BETA ALPHA GAMMA".into()], 0);
        d.push(vec!["ALPHA DELTA".into()], 1);
        d.push(vec!["BETA".into()], 1);
        for min_overlap in 1..=3 {
            let b = IndexedTokenBlocker {
                keys: vec![0],
                min_overlap,
                stop: StopPolicy::None,
                threads: 1,
            };
            let mut reference = std::collections::HashSet::new();
            for i in 0..d.len() {
                for j in 0..i {
                    let ti: HashSet<&str> = d.records[i].values[0].split_whitespace().collect();
                    let tj: HashSet<&str> = d.records[j].values[0].split_whitespace().collect();
                    if ti.intersection(&tj).count() >= min_overlap {
                        reference.insert(Pair(j, i));
                    }
                }
            }
            assert_eq!(b.candidates(&d), reference, "min_overlap={min_overlap}");
        }
    }

    #[test]
    fn soundex_blocker_pairs_phonetic_variants() {
        let mut d = Dataset::new(vec!["last".into()]);
        d.push(vec!["ROBERT".into()], 0);
        d.push(vec!["RUPERT".into()], 0);
        d.push(vec!["ASHCRAFT".into()], 1);
        d.push(vec!["ASHCROFT".into()], 1);
        d.push(vec!["12345".into()], 2); // no code: joins no bucket
        d.push(vec!["12345".into()], 2);
        let c = SoundexBlocker::new(0, 64).candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
        assert!(c.contains(&Pair(2, 3)));
        assert!(!c.iter().any(|p| p.0 >= 4 || p.1 >= 4));
    }

    #[test]
    fn freq_vector_edit_bound_admits_true_typos() {
        let d = typo_data();
        // Each typo pair is within Damerau distance 1; with no stop
        // pruning the count filter must keep every gold pair.
        let b = FreqVectorBlocker {
            key: 0,
            q: 3,
            bound: OverlapBound::EditDistance(1),
            stop: StopPolicy::None,
            threads: 1,
        };
        let q = blocking_quality(&d, &b.candidates(&d));
        assert_eq!(q.pair_completeness, 1.0);
    }

    #[test]
    fn freq_vector_rejects_disjoint_values_without_comparisons() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["AAAAAA".into()], 0);
        d.push(vec!["BBBBBB".into()], 1);
        d.push(vec!["AAAAAB".into()], 0);
        let b = FreqVectorBlocker::within_edits(0, 1, 64);
        let c = b.candidates(&d);
        assert!(c.contains(&Pair(0, 2)));
        assert!(!c.contains(&Pair(0, 1)));
        assert!(!c.contains(&Pair(1, 2)));
    }

    #[test]
    fn freq_vector_ratio_bound_orders_by_overlap() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["ABCDEFGH".into()], 0);
        d.push(vec!["ABCDEFGX".into()], 0); // high overlap
        d.push(vec!["ABXXXXXX".into()], 1); // low overlap with 0
        let strict = FreqVectorBlocker {
            key: 0,
            q: 2,
            bound: OverlapBound::Ratio(0.8),
            stop: StopPolicy::None,
            threads: 1,
        };
        let c = strict.candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
        assert!(!c.contains(&Pair(0, 2)));
    }

    #[test]
    fn composite_unions_passes() {
        let d = typo_data();
        let qgram = IndexedQGramBlocker::trigrams(0);
        let sdx = SoundexBlocker::new(1, 64);
        let composite = CompositeBlocker::new(vec![Box::new(qgram.clone()), Box::new(sdx.clone())]);
        assert_eq!(composite.len(), 2);
        assert!(!composite.is_empty());
        let mut collector = PairCollector::new();
        composite.stream_into(&d, &mut collector);
        let unioned = collector.finish_set();
        let mut expected = qgram.candidates(&d);
        expected.extend(sdx.candidates(&d));
        assert_eq!(unioned, expected);
    }

    #[test]
    fn parallel_probe_is_bit_identical() {
        let d = typo_data();
        for blocker in [1usize, 2, 4].map(|t| IndexedQGramBlocker {
            key: 0,
            q: 2,
            stop: StopPolicy::None,
            threads: t,
        }) {
            let mut seq = Vec::new();
            IndexedQGramBlocker { threads: 1, ..blocker.clone() }.stream_into(&d, &mut seq);
            let mut par = Vec::new();
            blocker.stream_into(&d, &mut par);
            assert_eq!(seq, par, "threads={}", blocker.threads);
        }
    }

    #[test]
    fn empty_dataset_and_empty_values() {
        let empty = Dataset::new(vec!["v".into()]);
        assert!(IndexedQGramBlocker::trigrams(0).candidates(&empty).is_empty());
        assert!(SoundexBlocker::new(0, 8).candidates(&empty).is_empty());
        let mut blanks = Dataset::new(vec!["v".into()]);
        blanks.push(vec!["".into()], 0);
        blanks.push(vec!["  ".into()], 0);
        assert!(IndexedQGramBlocker::trigrams(0).candidates(&blanks).is_empty());
        assert!(FreqVectorBlocker::within_edits(0, 1, 8).candidates(&blanks).is_empty());
    }
}
