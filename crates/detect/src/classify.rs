//! Classification: thresholding scored pairs and transitive closure.

use std::collections::HashSet;

use crate::dataset::Pair;

/// A candidate pair with its record similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// The record pair.
    pub pair: Pair,
    /// Matcher similarity in `[0, 1]`.
    pub score: f64,
}

/// Pairs with `score ≥ threshold`.
pub fn classify(scored: &[ScoredPair], threshold: f64) -> HashSet<Pair> {
    scored
        .iter()
        .filter(|s| s.score >= threshold)
        .map(|s| s.pair)
        .collect()
}

/// Union-find over record indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Find with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Union by rank; returns `true` when two sets merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Transitive closure: expand a duplicate-pair decision into clusters
/// and return the full pair set implied by them.
pub fn transitive_closure(n: usize, pairs: &HashSet<Pair>) -> HashSet<Pair> {
    let mut uf = UnionFind::new(n);
    for p in pairs {
        uf.union(p.0, p.1);
    }
    let mut members: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        members.entry(uf.find(i)).or_default().push(i);
    }
    let mut out = HashSet::new();
    for group in members.values() {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                out.insert(Pair::new(group[i], group[j]));
            }
        }
    }
    out
}

/// Predicted clusters (as sorted member lists) from a duplicate-pair
/// decision.
pub fn clusters_from_pairs(n: usize, pairs: &HashSet<Pair>) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for p in pairs {
        uf.union(p.0, p.1);
    }
    let mut members: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        members.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = members.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(a: usize, b: usize, s: f64) -> ScoredPair {
        ScoredPair {
            pair: Pair::new(a, b),
            score: s,
        }
    }

    #[test]
    fn classify_respects_threshold_inclusively() {
        let scored = vec![sp(0, 1, 0.9), sp(1, 2, 0.7), sp(2, 3, 0.5)];
        let out = classify(&scored, 0.7);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Pair(0, 1)));
        assert!(out.contains(&Pair(1, 2)));
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn closure_completes_triangles() {
        let pairs: HashSet<Pair> = [Pair(0, 1), Pair(1, 2)].into();
        let closed = transitive_closure(4, &pairs);
        assert!(closed.contains(&Pair(0, 2)));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn closure_of_closed_set_is_identity() {
        let pairs: HashSet<Pair> = [Pair(0, 1), Pair(1, 2), Pair(0, 2)].into();
        assert_eq!(transitive_closure(3, &pairs), pairs);
    }

    #[test]
    fn clusters_from_pairs_partition() {
        let pairs: HashSet<Pair> = [Pair(0, 1), Pair(2, 3), Pair(3, 4)].into();
        let clusters = clusters_from_pairs(6, &pairs);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
    }

    #[test]
    fn empty_inputs() {
        assert!(classify(&[], 0.5).is_empty());
        assert!(transitive_closure(0, &HashSet::new()).is_empty());
        assert_eq!(clusters_from_pairs(2, &HashSet::new()), vec![vec![0], vec![1]]);
    }
}
