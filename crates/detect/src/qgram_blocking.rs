//! q-gram blocking: a typo-robust alternative to standard blocking.
//!
//! Standard blocking loses every duplicate whose blocking-key value
//! carries a typo (the ablation on the Census comparator shows only
//! ~36 % pair completeness). q-gram blocking instead places a record in
//! one block per q-gram of its key value, so two values sharing *any*
//! q-gram meet in at least one block. Overly frequent q-grams are
//! skipped to keep candidate counts bounded.
//!
//! The original implementation allocated a `HashSet<String>` of grams
//! per record and uppercased each value on every visit. It now rides
//! the indexed core: one normalized-view pass over the column
//! ([`crate::index::NormalizedKey`]), byte-window gramming with an
//! ASCII fast path, and a [`TermIndex`] whose posting lists *are* the
//! blocks (within-record duplicate grams collapse during insertion, so
//! no per-record set exists). The candidate set is unchanged —
//! property-tested equal to [`crate::index::IndexedQGramBlocker`] and
//! to the historical scan semantics.

use crate::blocking::StreamBlocker;
use crate::dataset::{Dataset, Pair};
use crate::index::{for_each_gram, NormalizedKey};
use crate::postings::TermIndex;
use crate::sink::CandidateSink;

/// q-gram blocking over one key attribute.
#[derive(Debug, Clone)]
pub struct QGramBlocking {
    /// Index of the blocking-key attribute.
    pub key: usize,
    /// Gram size (3 is a good default for names). A size of 0 is
    /// treated as 1.
    pub q: usize,
    /// Blocks larger than this fraction of the dataset are considered
    /// stop-grams and skipped (e.g. `0.05` = 5 %).
    pub max_block_fraction: f64,
}

impl QGramBlocking {
    /// Trigram blocking with a 5 % stop-gram cutoff.
    pub fn trigrams(key: usize) -> Self {
        QGramBlocking {
            key,
            q: 3,
            max_block_fraction: 0.05,
        }
    }

    /// A validated configuration: rejects a zero gram size instead of
    /// silently clamping it.
    pub fn validated(
        key: usize,
        q: usize,
        max_block_fraction: f64,
    ) -> Result<Self, crate::blocking::BlockingConfigError> {
        if q == 0 {
            return Err(crate::blocking::BlockingConfigError::ZeroGramSize);
        }
        Ok(QGramBlocking { key, q, max_block_fraction })
    }
}

impl StreamBlocker for QGramBlocking {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        assert!(data.len() <= u32::MAX as usize, "indexes address records as u32");
        let view = NormalizedKey::build(data, self.key);
        let mut index = TermIndex::new();
        for i in 0..view.len() {
            index.open_record(i as u32);
            for_each_gram(view.value(i), self.q, |g| index.insert(g));
            index.close_record();
        }
        let cap = ((data.len() as f64 * self.max_block_fraction).ceil() as usize).max(2);
        // Posting lists are the blocks: distinct ascending ids per gram.
        for slot in 0..index.terms() as u32 {
            let members = index.posting(slot);
            if members.len() > cap {
                continue; // stop-gram
            }
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    sink.push(Pair(members[a] as usize, members[b] as usize));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{blocking_quality, Blocker, StandardBlocking};

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["last".into()]);
        d.push(vec!["WILLIAMS".into()], 0);
        d.push(vec!["WILLAMS".into()], 0); // typo: deleted I
        d.push(vec!["JOHNSON".into()], 1);
        d.push(vec!["JOHNSTON".into()], 1); // typo: inserted T
        d.push(vec!["ZQXV".into()], 2);
        d
    }

    #[test]
    fn catches_typo_pairs_standard_blocking_misses() {
        let d = data();
        let standard = StandardBlocking { key: 0 }.candidates(&d);
        let qgram = QGramBlocking::trigrams(0).candidates(&d);
        let q_std = blocking_quality(&d, &standard);
        let q_qgm = blocking_quality(&d, &qgram);
        assert_eq!(q_std.pair_completeness, 0.0, "typos break exact keys");
        assert_eq!(q_qgm.pair_completeness, 1.0, "shared grams survive typos");
    }

    #[test]
    fn disjoint_values_produce_no_candidates() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["AAAA".into()], 0);
        d.push(vec!["BBBB".into()], 1);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.is_empty());
    }

    #[test]
    fn stop_grams_are_skipped() {
        // Every record shares the gram "AAA"; with a tight cap the block
        // is dropped entirely.
        let mut d = Dataset::new(vec!["v".into()]);
        for i in 0..100 {
            d.push(vec![format!("AAA{i:03}")], i);
        }
        let tight = QGramBlocking { key: 0, q: 3, max_block_fraction: 0.05 };
        let c = tight.candidates(&d);
        // The shared "AAA" block (100 members) is skipped; remaining
        // grams are nearly unique, so few candidates survive.
        assert!(c.len() < 400, "{}", c.len());

        let loose = QGramBlocking { key: 0, q: 3, max_block_fraction: 1.0 };
        let all = loose.candidates(&d);
        assert_eq!(all.len(), 100 * 99 / 2);
    }

    #[test]
    fn short_values_block_as_whole_tokens() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["AB".into()], 0);
        d.push(vec!["AB".into()], 0);
        d.push(vec!["".into()], 1);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
        assert_eq!(c.len(), 1, "empty values join no block");
    }

    #[test]
    fn case_insensitive_grams() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["Smith".into()], 0);
        d.push(vec!["SMITH".into()], 0);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
    }

    #[test]
    fn repeated_grams_within_a_value_post_once() {
        // "ABABAB" repeats gram AB/BA; the posting must hold each record
        // once or within-block pairs would double-emit.
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["ABABAB".into()], 0);
        d.push(vec!["ABAB".into()], 0);
        let mut emitted = Vec::new();
        QGramBlocking { key: 0, q: 2, max_block_fraction: 1.0 }.stream_into(&d, &mut emitted);
        // One emission per shared distinct gram (AB, BA), not per occurrence.
        assert_eq!(emitted.len(), 2);
        assert!(emitted.iter().all(|&p| p == Pair(0, 1)));
    }

    #[test]
    fn unicode_values_gram_by_chars() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["MÜLLER".into()], 0);
        d.push(vec!["müller".into()], 0);
        d.push(vec!["MÖLLER".into()], 0);
        let c = QGramBlocking { key: 0, q: 3, max_block_fraction: 1.0 }.candidates(&d);
        assert!(c.contains(&Pair(0, 1)), "case folds before gramming");
        assert!(c.contains(&Pair(0, 2)), "LLE/LER shared");
    }
}
