//! q-gram blocking: a typo-robust alternative to standard blocking.
//!
//! Standard blocking loses every duplicate whose blocking-key value
//! carries a typo (the ablation on the Census comparator shows only
//! ~36 % pair completeness). q-gram blocking instead places a record in
//! one block per q-gram of its key value, so two values sharing *any*
//! q-gram meet in at least one block. Overly frequent q-grams are
//! skipped to keep candidate counts bounded.

use std::collections::{HashMap, HashSet};

use crate::blocking::Blocker;
use crate::dataset::{Dataset, Pair};

/// q-gram blocking over one key attribute.
#[derive(Debug, Clone)]
pub struct QGramBlocking {
    /// Index of the blocking-key attribute.
    pub key: usize,
    /// Gram size (3 is a good default for names).
    pub q: usize,
    /// Blocks larger than this fraction of the dataset are considered
    /// stop-grams and skipped (e.g. `0.05` = 5 %).
    pub max_block_fraction: f64,
}

impl QGramBlocking {
    /// Trigram blocking with a 5 % stop-gram cutoff.
    pub fn trigrams(key: usize) -> Self {
        QGramBlocking {
            key,
            q: 3,
            max_block_fraction: 0.05,
        }
    }

    fn grams(&self, value: &str) -> HashSet<String> {
        let chars: Vec<char> = value.trim().to_uppercase().chars().collect();
        if chars.is_empty() {
            return HashSet::new();
        }
        if chars.len() < self.q {
            return HashSet::from([chars.iter().collect()]);
        }
        chars
            .windows(self.q)
            .map(|w| w.iter().collect::<String>())
            .collect()
    }
}

impl Blocker for QGramBlocking {
    fn candidates(&self, data: &Dataset) -> HashSet<Pair> {
        assert!(self.q >= 1, "gram size must be positive");
        let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in data.records.iter().enumerate() {
            for g in self.grams(&r.values[self.key]) {
                blocks.entry(g).or_default().push(i);
            }
        }
        let cap = ((data.len() as f64 * self.max_block_fraction).ceil() as usize).max(2);
        let mut out = HashSet::new();
        for members in blocks.values() {
            if members.len() > cap {
                continue; // stop-gram
            }
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    out.insert(Pair::new(members[i], members[j]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{blocking_quality, StandardBlocking};

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["last".into()]);
        d.push(vec!["WILLIAMS".into()], 0);
        d.push(vec!["WILLAMS".into()], 0); // typo: deleted I
        d.push(vec!["JOHNSON".into()], 1);
        d.push(vec!["JOHNSTON".into()], 1); // typo: inserted T
        d.push(vec!["ZQXV".into()], 2);
        d
    }

    #[test]
    fn catches_typo_pairs_standard_blocking_misses() {
        let d = data();
        let standard = StandardBlocking { key: 0 }.candidates(&d);
        let qgram = QGramBlocking::trigrams(0).candidates(&d);
        let q_std = blocking_quality(&d, &standard);
        let q_qgm = blocking_quality(&d, &qgram);
        assert_eq!(q_std.pair_completeness, 0.0, "typos break exact keys");
        assert_eq!(q_qgm.pair_completeness, 1.0, "shared grams survive typos");
    }

    #[test]
    fn disjoint_values_produce_no_candidates() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["AAAA".into()], 0);
        d.push(vec!["BBBB".into()], 1);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.is_empty());
    }

    #[test]
    fn stop_grams_are_skipped() {
        // Every record shares the gram "AAA"; with a tight cap the block
        // is dropped entirely.
        let mut d = Dataset::new(vec!["v".into()]);
        for i in 0..100 {
            d.push(vec![format!("AAA{i:03}")], i);
        }
        let tight = QGramBlocking { key: 0, q: 3, max_block_fraction: 0.05 };
        let c = tight.candidates(&d);
        // The shared "AAA" block (100 members) is skipped; remaining
        // grams are nearly unique, so few candidates survive.
        assert!(c.len() < 400, "{}", c.len());

        let loose = QGramBlocking { key: 0, q: 3, max_block_fraction: 1.0 };
        let all = loose.candidates(&d);
        assert_eq!(all.len(), 100 * 99 / 2);
    }

    #[test]
    fn short_values_block_as_whole_tokens() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["AB".into()], 0);
        d.push(vec!["AB".into()], 0);
        d.push(vec!["".into()], 1);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
        assert_eq!(c.len(), 1, "empty values join no block");
    }

    #[test]
    fn case_insensitive_grams() {
        let mut d = Dataset::new(vec!["v".into()]);
        d.push(vec!["Smith".into()], 0);
        d.push(vec!["SMITH".into()], 0);
        let c = QGramBlocking::trigrams(0).candidates(&d);
        assert!(c.contains(&Pair(0, 1)));
    }
}
