//! Duplicate detection algorithms and their evaluation.
//!
//! This crate implements the detection pipelines the paper runs over its
//! customized datasets (Section 6.5, Figure 5):
//!
//! * [`dataset`] — a schema-agnostic labeled dataset (records + gold
//!   standard), usable for the NC data as well as the Cora/Census/CDDB
//!   comparators;
//! * [`blocking`] — search-space reduction: multi-pass Sorted
//!   Neighborhood (the paper's choice: one pass per unique attribute,
//!   window 20), standard blocking and full pairwise enumeration, all
//!   streaming through the [`sink`] API;
//! * [`sink`] — streaming candidate emission: blockers push pairs into
//!   a [`sink::CandidateSink`] instead of materializing `HashSet`s;
//! * [`postings`] — inverted-index primitives: interned terms, sorted
//!   posting lists, galloping intersection, counting unions;
//! * [`index`] — indexed candidate generation: q-gram/token inverted
//!   indexes, Soundex buckets and a sparse gram-frequency-vector index
//!   with deterministic parallel probe;
//! * [`matcher`] — record similarity as the entropy-weighted average of
//!   attribute similarities, with the best 1:1 matching over the name
//!   attributes (names are often confused between fields);
//! * [`classify`] — threshold classification and transitive closure;
//! * [`cluster_eval`] — stricter cluster-level metrics (closed pairwise
//!   and exact-cluster P/R/F1);
//! * [`qgram_blocking`] — typo-robust q-gram blocking, an alternative
//!   the blocking ablation compares against;
//! * [`bitsample`] — encoded-space blocking: bit-sampling LSH buckets
//!   over fixed-width bitset encodings (e.g. nc-pprl CLKs), streaming
//!   through the same [`sink`] API as the plaintext blockers;
//! * [`eval`] — precision / recall / F1 and full threshold sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitsample;
pub mod blocking;
pub mod classify;
pub mod cluster_eval;
pub mod dataset;
pub mod eval;
pub mod index;
pub mod matcher;
pub mod postings;
pub mod qgram_blocking;
pub mod sink;
