//! Cluster-level evaluation.
//!
//! Pairwise precision/recall (as in Figure 5) rewards partial clusters;
//! cluster-level metrics demand exact cluster reconstruction and are
//! the stricter lens many entity-resolution papers additionally report.
//! This module provides both the closed-pairwise view (pairwise metrics
//! *after* transitive closure) and exact-cluster precision/recall/F1.

use std::collections::{HashMap, HashSet};

use crate::classify::{clusters_from_pairs, transitive_closure};
use crate::dataset::{Dataset, Pair};
use crate::eval::{evaluate, PrF};

/// Cluster-level quality of a duplicate-pair decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterQuality {
    /// Pairwise P/R/F1 after transitive closure of the decision.
    pub closed_pairwise: PrF,
    /// Exact-cluster precision: fraction of predicted clusters that
    /// exactly equal a gold cluster.
    pub cluster_precision: f64,
    /// Exact-cluster recall: fraction of gold clusters reconstructed
    /// exactly.
    pub cluster_recall: f64,
    /// Harmonic mean of the two.
    pub cluster_f1: f64,
    /// Number of predicted clusters (incl. singletons).
    pub predicted_clusters: usize,
}

/// Gold clusters of a dataset as sorted member lists.
pub fn gold_clusters(data: &Dataset) -> Vec<Vec<usize>> {
    let mut by_cluster: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, r) in data.records.iter().enumerate() {
        by_cluster.entry(r.cluster).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = by_cluster.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort();
    out
}

/// Evaluate a pair decision at the cluster level.
pub fn evaluate_clusters(data: &Dataset, predicted_pairs: &HashSet<Pair>) -> ClusterQuality {
    let n = data.len();
    let closed = transitive_closure(n, predicted_pairs);
    let closed_pairwise = evaluate(&closed, &data.gold_pairs());

    let predicted = clusters_from_pairs(n, predicted_pairs);
    let gold = gold_clusters(data);
    let gold_set: HashSet<&Vec<usize>> = gold.iter().collect();
    let exact = predicted.iter().filter(|c| gold_set.contains(c)).count();

    let cluster_precision = if predicted.is_empty() {
        1.0
    } else {
        exact as f64 / predicted.len() as f64
    };
    let cluster_recall = if gold.is_empty() {
        1.0
    } else {
        exact as f64 / gold.len() as f64
    };
    let cluster_f1 = if cluster_precision + cluster_recall == 0.0 {
        0.0
    } else {
        2.0 * cluster_precision * cluster_recall / (cluster_precision + cluster_recall)
    };
    ClusterQuality {
        closed_pairwise,
        cluster_precision,
        cluster_recall,
        cluster_f1,
        predicted_clusters: predicted.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]);
        for (v, c) in [("A", 0), ("A2", 0), ("A3", 0), ("B", 1), ("B2", 1), ("C", 2)] {
            d.push(vec![v.into()], c);
        }
        d
    }

    #[test]
    fn perfect_decision_scores_one() {
        let d = toy();
        let q = evaluate_clusters(&d, &d.gold_pairs());
        assert_eq!(q.closed_pairwise.f1, 1.0);
        assert_eq!(q.cluster_precision, 1.0);
        assert_eq!(q.cluster_recall, 1.0);
        assert_eq!(q.cluster_f1, 1.0);
        assert_eq!(q.predicted_clusters, 3);
    }

    #[test]
    fn partial_cluster_counts_pairwise_but_not_exactly() {
        let d = toy();
        // Only one of the three A-pairs predicted: closure keeps {A, A2}
        // together but misses A3.
        let predicted: HashSet<Pair> = [Pair(0, 1), Pair(3, 4)].into();
        let q = evaluate_clusters(&d, &predicted);
        assert!(q.closed_pairwise.recall < 1.0);
        assert!(q.closed_pairwise.precision == 1.0);
        // Exact clusters: {B, B2} and {C} match; {A, A2} and {A3} do not.
        assert_eq!(q.predicted_clusters, 4);
        assert!((q.cluster_precision - 0.5).abs() < 1e-12);
        assert!((q.cluster_recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn over_merging_hurts_cluster_precision() {
        let d = toy();
        // Merge everything into one blob.
        let mut predicted = HashSet::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                predicted.insert(Pair(i, j));
            }
        }
        let q = evaluate_clusters(&d, &predicted);
        assert_eq!(q.predicted_clusters, 1);
        assert_eq!(q.cluster_precision, 0.0);
        assert_eq!(q.cluster_recall, 0.0);
        assert!(q.closed_pairwise.recall == 1.0);
        assert!(q.closed_pairwise.precision < 0.5);
    }

    #[test]
    fn empty_decision_keeps_singletons() {
        let d = toy();
        let q = evaluate_clusters(&d, &HashSet::new());
        assert_eq!(q.predicted_clusters, 6);
        // Only the true singleton {C} is exactly right.
        assert!((q.cluster_precision - 1.0 / 6.0).abs() < 1e-12);
        assert!((q.cluster_recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gold_clusters_partition() {
        let d = toy();
        let gold = gold_clusters(&d);
        let total: usize = gold.iter().map(Vec::len).sum();
        assert_eq!(total, d.len());
        assert_eq!(gold.len(), 3);
    }
}
