//! A schema-agnostic labeled test dataset.

use std::collections::HashSet;

use nc_similarity::entropy::{normalize_weights, EntropyAccumulator};

/// An unordered record pair, stored with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pair(pub usize, pub usize);

impl Pair {
    /// Create a normalized pair. Panics when `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a record does not pair with itself");
        if a < b {
            Pair(a, b)
        } else {
            Pair(b, a)
        }
    }
}

/// One record: attribute values plus its gold-standard cluster label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Attribute values (empty string = missing), in schema order.
    pub values: Vec<String>,
    /// Gold-standard cluster id.
    pub cluster: usize,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Attribute names, defining the value order of every record.
    pub attr_names: Vec<String>,
    /// The records.
    pub records: Vec<Record>,
}

impl Dataset {
    /// Create an empty dataset over the given schema.
    pub fn new(attr_names: Vec<String>) -> Self {
        Dataset {
            attr_names,
            records: Vec::new(),
        }
    }

    /// Append a record. Panics when the value count mismatches the
    /// schema.
    pub fn push(&mut self, values: Vec<String>, cluster: usize) {
        assert_eq!(values.len(), self.attr_names.len(), "schema mismatch");
        self.records.push(Record { values, cluster });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// The gold standard: every unordered pair of records sharing a
    /// cluster label.
    pub fn gold_pairs(&self) -> HashSet<Pair> {
        use std::collections::HashMap;
        let mut by_cluster: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, r) in self.records.iter().enumerate() {
            by_cluster.entry(r.cluster).or_default().push(i);
        }
        let mut pairs = HashSet::new();
        for members in by_cluster.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    pairs.insert(Pair::new(members[i], members[j]));
                }
            }
        }
        pairs
    }

    /// Entropy of every attribute over all records (the detection-side
    /// weighting: the user cannot exclude duplicates they do not know).
    pub fn attribute_entropies(&self) -> Vec<f64> {
        let mut accs: Vec<EntropyAccumulator> = (0..self.num_attrs())
            .map(|_| EntropyAccumulator::new())
            .collect();
        for r in &self.records {
            for (k, v) in r.values.iter().enumerate() {
                accs[k].observe(v.trim());
            }
        }
        accs.iter().map(EntropyAccumulator::entropy).collect()
    }

    /// Normalized entropy weights per attribute.
    pub fn entropy_weights(&self) -> Vec<f64> {
        normalize_weights(&self.attribute_entropies())
    }

    /// Indices of the `k` most unique attributes (highest entropy),
    /// descending — the paper's choice of Sorted-Neighborhood keys.
    pub fn top_entropy_attrs(&self, k: usize) -> Vec<usize> {
        let e = self.attribute_entropies();
        let mut idx: Vec<usize> = (0..e.len()).collect();
        idx.sort_by(|&a, &b| e[b].total_cmp(&e[a]));
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new(vec!["first".into(), "last".into()]);
        d.push(vec!["ANNA".into(), "SMITH".into()], 0);
        d.push(vec!["ANNA".into(), "SMYTH".into()], 0);
        d.push(vec!["BOB".into(), "JONES".into()], 1);
        d.push(vec!["BOBBY".into(), "JONES".into()], 1);
        d.push(vec!["CARL".into(), "DAVIS".into()], 2);
        d
    }

    #[test]
    fn pair_normalizes_order() {
        assert_eq!(Pair::new(5, 2), Pair(2, 5));
        assert_eq!(Pair::new(2, 5), Pair(2, 5));
    }

    #[test]
    #[should_panic(expected = "does not pair with itself")]
    fn self_pair_panics() {
        Pair::new(3, 3);
    }

    #[test]
    fn gold_pairs_from_clusters() {
        let d = tiny();
        let gold = d.gold_pairs();
        assert_eq!(gold.len(), 2);
        assert!(gold.contains(&Pair(0, 1)));
        assert!(gold.contains(&Pair(2, 3)));
    }

    #[test]
    fn gold_pairs_of_larger_cluster() {
        let mut d = Dataset::new(vec!["x".into()]);
        for _ in 0..4 {
            d.push(vec!["V".into()], 7);
        }
        assert_eq!(d.gold_pairs().len(), 6);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn wrong_arity_panics() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push(vec!["only-one".into()], 0);
    }

    #[test]
    fn entropy_ranks_varying_attributes_higher() {
        let mut d = Dataset::new(vec!["constant".into(), "unique".into()]);
        for i in 0..16 {
            d.push(vec!["SAME".into(), format!("V{i}")], i);
        }
        let e = d.attribute_entropies();
        assert_eq!(e[0], 0.0);
        assert!(e[1] > 3.9);
        assert_eq!(d.top_entropy_attrs(1), vec![1]);
        let w = d.entropy_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 5);
        assert_eq!(d.num_attrs(), 2);
        assert!(!d.is_empty());
    }
}
