//! Encoded-space candidate generation: bit-sampling buckets over CLK
//! prefixes.
//!
//! Privacy-preserving linkage (nc-pprl) replaces every record with a
//! fixed-width Bloom-filter encoding; no plaintext key is available
//! to block on. This module blocks in the encoded space instead: for
//! each of `bands` independent passes, sample `band_bits` bit
//! positions from the first `prefix_bits` of every record-level CLK
//! and bucket records by the sampled bit pattern. Two records agree
//! on a band exactly when their CLKs agree at every sampled position,
//! so similar encodings (small Hamming distance) collide in at least
//! one band with high probability while dissimilar ones rarely do —
//! the classic bit-sampling LSH family, whose collision probability
//! per band is `(1 − d/w)^band_bits` for Hamming distance `d` over
//! `w` sampled-from bits.
//!
//! Pairs stream into the existing [`CandidateSink`] API, so the same
//! collectors, counters and quality sinks the plaintext index uses
//! work unchanged. Emission order is a pure function of the input
//! order and the configuration (buckets are sorted before emission),
//! making runs byte-reproducible. The blocker works on any
//! `AsRef<[u64]>` bitset — it does not depend on nc-pprl; the pprl
//! fidelity suite and `bench_pprl` close the loop end to end.

use crate::dataset::Pair;
use crate::sink::CandidateSink;

/// One SplitMix64 step (local copy; the workspace convention for
/// small deterministic derivations).
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bit-sampling blocking over fixed-width encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSampleBlocker {
    /// Independent sampling passes. More bands → higher recall,
    /// more candidates.
    pub bands: usize,
    /// Bit positions sampled per band. More bits → more selective
    /// buckets (fewer candidates, lower recall).
    pub band_bits: usize,
    /// Sample positions only from the first `prefix_bits` of each
    /// encoding (`0` = the full width). Restricting to a prefix lets
    /// deployments publish truncated CLK prefixes for blocking while
    /// keeping full encodings for scoring.
    pub prefix_bits: usize,
    /// Seed for the position sampling.
    pub seed: u64,
    /// Buckets larger than this are skipped (the stop-term analogue:
    /// a bucket keyed by an all-zero sample pattern would otherwise
    /// go quadratic on sparse encodings). `0` = unbounded.
    pub max_bucket: usize,
}

impl Default for BitSampleBlocker {
    fn default() -> Self {
        BitSampleBlocker {
            bands: 24,
            band_bits: 14,
            prefix_bits: 0,
            seed: 0x9c_1b_55,
            max_bucket: 4096,
        }
    }
}

impl BitSampleBlocker {
    /// The sampled bit positions of one band over encodings of
    /// `width_bits`. Positions are drawn without replacement from
    /// `0..min(prefix_bits, width_bits)` (all of the width when
    /// `prefix_bits` is 0) via seeded Fisher–Yates-style rejection,
    /// so every band is a deterministic function of
    /// `(seed, band, width)`.
    fn band_positions(&self, band: usize, width_bits: usize) -> Vec<u32> {
        let window = if self.prefix_bits == 0 {
            width_bits
        } else {
            self.prefix_bits.min(width_bits)
        };
        let take = self.band_bits.min(window);
        let mut state = splitmix64(self.seed ^ (band as u64).wrapping_mul(0x9E37_79B9));
        let mut positions = Vec::with_capacity(take);
        while positions.len() < take {
            state = splitmix64(state);
            let candidate = (state % window as u64) as u32;
            if !positions.contains(&candidate) {
                positions.push(candidate);
            }
        }
        positions
    }

    /// Stream every candidate pair of `encodings` into `sink`.
    /// Encodings must share one width; records are addressed by their
    /// index in the slice. Pairs rediscovered by multiple bands are
    /// emitted once per band — pair sinks deduplicate.
    ///
    /// # Panics
    /// When the encodings differ in width.
    pub fn stream_into<B: AsRef<[u64]>>(&self, encodings: &[B], sink: &mut dyn CandidateSink) {
        let Some(first) = encodings.first() else {
            return;
        };
        let width_words = first.as_ref().len();
        let width_bits = width_words * 64;
        if width_bits == 0 {
            return;
        }
        let cap = if self.max_bucket == 0 {
            usize::MAX
        } else {
            self.max_bucket
        };

        // (signature, id) pairs, reused across bands.
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(encodings.len());
        for band in 0..self.bands {
            let positions = self.band_positions(band, width_bits);
            keyed.clear();
            for (id, enc) in encodings.iter().enumerate() {
                let words = enc.as_ref();
                assert_eq!(words.len(), width_words, "encoding width mismatch");
                let mut sig = 0u64;
                for (bit, &pos) in positions.iter().enumerate() {
                    let set = words[pos as usize / 64] >> (pos % 64) & 1;
                    sig |= set << (bit as u64 % 64);
                }
                keyed.push((sig, id as u32));
            }
            // Sort groups equal signatures together; ids stay ascending
            // within a group because the sort is stable on the second
            // component (ids were pushed in order and sort_unstable on
            // the tuple orders by id within equal signatures).
            keyed.sort_unstable();
            let mut start = 0;
            while start < keyed.len() {
                let sig = keyed[start].0;
                let mut end = start + 1;
                while end < keyed.len() && keyed[end].0 == sig {
                    end += 1;
                }
                let bucket = &keyed[start..end];
                if bucket.len() > 1 && bucket.len() <= cap {
                    for (i, &(_, a)) in bucket.iter().enumerate() {
                        for &(_, b) in &bucket[i + 1..] {
                            sink.push(Pair::new(a as usize, b as usize));
                        }
                    }
                }
                start = end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::PairCollector;

    /// A toy encoding: `words[0]` carries the pattern directly.
    fn enc(pattern: u64) -> Vec<u64> {
        vec![pattern, 0]
    }

    fn candidates(blocker: &BitSampleBlocker, encodings: &[Vec<u64>]) -> Vec<Pair> {
        let mut collector = PairCollector::new();
        blocker.stream_into(encodings, &mut collector);
        collector.finish()
    }

    #[test]
    fn identical_encodings_always_pair() {
        let blocker = BitSampleBlocker {
            bands: 4,
            band_bits: 8,
            ..Default::default()
        };
        let data = vec![enc(0xDEAD_BEEF), enc(0xDEAD_BEEF), enc(0x1234_5678)];
        let pairs = candidates(&blocker, &data);
        assert!(pairs.contains(&Pair(0, 1)), "identical CLKs share every band");
    }

    #[test]
    fn emission_is_deterministic() {
        let blocker = BitSampleBlocker::default();
        let data: Vec<Vec<u64>> = (0..64u64)
            .map(|i| enc(splitmix64(i) & splitmix64(i / 2)))
            .collect();
        assert_eq!(candidates(&blocker, &data), candidates(&blocker, &data));
    }

    #[test]
    fn seed_changes_the_sampled_positions() {
        let a = BitSampleBlocker::default();
        let b = BitSampleBlocker {
            seed: 99,
            ..Default::default()
        };
        assert_ne!(a.band_positions(0, 128), b.band_positions(0, 128));
        // Positions are distinct within a band.
        let positions = a.band_positions(0, 128);
        let mut dedup = positions.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), positions.len());
    }

    #[test]
    fn prefix_restricts_sampling_window() {
        let blocker = BitSampleBlocker {
            prefix_bits: 64,
            ..Default::default()
        };
        for band in 0..blocker.bands {
            assert!(blocker
                .band_positions(band, 1024)
                .iter()
                .all(|&p| p < 64));
        }
    }

    #[test]
    fn oversized_buckets_are_skipped() {
        // All-identical encodings form one bucket of 5 in every band;
        // a cap of 4 suppresses it entirely.
        let blocker = BitSampleBlocker {
            bands: 3,
            band_bits: 6,
            max_bucket: 4,
            ..Default::default()
        };
        let data = vec![enc(7); 5];
        assert!(candidates(&blocker, &data).is_empty());
        let unbounded = BitSampleBlocker {
            max_bucket: 0,
            ..blocker
        };
        assert_eq!(candidates(&unbounded, &data).len(), 10);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let blocker = BitSampleBlocker::default();
        let data: Vec<Vec<u64>> = Vec::new();
        assert!(candidates(&blocker, &data).is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let blocker = BitSampleBlocker {
            bands: 1,
            ..Default::default()
        };
        let data = vec![vec![1u64], vec![1u64, 2u64]];
        let mut collector = PairCollector::new();
        blocker.stream_into(&data, &mut collector);
    }

    #[test]
    fn near_encodings_pair_more_than_far_ones() {
        // 200 random encodings plus one near-duplicate of record 0
        // (4 bits flipped out of 128). The near pair must collide in
        // some band; a far pair (independent random words) should
        // collide in none for these parameters.
        let mut data: Vec<Vec<u64>> = (0..200u64)
            .map(|i| vec![splitmix64(i * 2 + 1), splitmix64(i * 3 + 7)])
            .collect();
        let mut near = data[0].clone();
        near[0] ^= 0b1011;
        near[1] ^= 1 << 63;
        data.push(near);
        let blocker = BitSampleBlocker {
            bands: 24,
            band_bits: 10,
            ..Default::default()
        };
        let pairs = candidates(&blocker, &data);
        assert!(
            pairs.contains(&Pair(0, 200)),
            "near-duplicate not recovered ({} candidates)",
            pairs.len()
        );
        // Selectivity: far fewer candidates than the full cross product.
        let all = 201 * 200 / 2;
        assert!(pairs.len() * 10 < all, "{} of {all} pairs emitted", pairs.len());
    }
}
