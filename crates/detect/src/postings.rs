//! Inverted-index primitives: interned terms, sorted posting lists and
//! the set operations over them.
//!
//! A [`TermIndex`] maps byte-string terms (q-grams, tokens, phonetic
//! codes) to posting lists of `u32` record ids. Records are inserted in
//! ascending id order, so every posting list is sorted and distinct by
//! construction — within-record duplicate terms collapse into a count
//! instead of a second posting entry. Alongside the postings the index
//! keeps a CSR map from record id back to its term slots, so probing a
//! record never re-tokenizes its value.
//!
//! Posting lists are combined with [`intersect_gallop`] (galloping /
//! exponential search, `O(m log(n/m))` for lists of length `m ≤ n`)
//! and [`union_counts`] (k-way concatenation with sort-and-run-length
//! counting, which doubles as the overlap accumulator of the
//! frequency-vector index).

use std::collections::HashMap;

/// One interned term's posting data.
#[derive(Debug, Default, Clone)]
struct Posting {
    /// Sorted, distinct record ids containing the term.
    ids: Vec<u32>,
    /// Per-id term frequency, parallel to `ids`.
    counts: Vec<u32>,
}

/// An inverted index over byte-string terms with a CSR record→term map.
#[derive(Debug, Default)]
pub struct TermIndex {
    /// Term bytes → slot.
    slots: HashMap<Box<[u8]>, u32>,
    postings: Vec<Posting>,
    /// CSR storage: term slots of record `i` live at
    /// `record_terms[record_offsets[i]..record_offsets[i + 1]]`.
    record_terms: Vec<u32>,
    /// Per-record term frequency, parallel to `record_terms`.
    record_counts: Vec<u32>,
    record_offsets: Vec<u32>,
    /// Id of the record currently being inserted.
    open_record: Option<u32>,
}

impl TermIndex {
    /// An empty index.
    pub fn new() -> Self {
        TermIndex {
            record_offsets: vec![0],
            ..Default::default()
        }
    }

    /// Begin the posting entries of record `id`. Records must be opened
    /// in strictly ascending id order starting at the current record
    /// count (gap-free), which is what keeps every posting list sorted
    /// without a sort pass.
    pub fn open_record(&mut self, id: u32) {
        debug_assert_eq!(id as usize + 1, self.record_offsets.len(), "records must be gap-free and ascending");
        self.open_record = Some(id);
    }

    /// Insert one term occurrence of the open record. Repeated terms
    /// within a record bump the occurrence count instead of growing the
    /// posting list.
    pub fn insert(&mut self, term: &[u8]) {
        let id = self.open_record.expect("open_record before insert");
        let slot = match self.slots.get(term) {
            Some(&slot) => slot,
            None => {
                let slot = self.postings.len() as u32;
                self.slots.insert(term.into(), slot);
                self.postings.push(Posting::default());
                slot
            }
        };
        let posting = &mut self.postings[slot as usize];
        if posting.ids.last() == Some(&id) {
            // Within-record duplicate: count it, don't re-post it. The
            // CSR segment already holds the slot; bump its count too.
            *posting.counts.last_mut().expect("counts parallel to ids") += 1;
            let open = self.record_offsets[id as usize] as usize;
            let seg = &self.record_terms[open..];
            let k = open + seg.iter().position(|&s| s == slot).expect("slot in open segment");
            self.record_counts[k] += 1;
        } else {
            posting.ids.push(id);
            posting.counts.push(1);
            self.record_terms.push(slot);
            self.record_counts.push(1);
        }
    }

    /// Close the open record. Must be called once per opened record.
    pub fn close_record(&mut self) {
        debug_assert!(self.open_record.is_some());
        self.record_offsets.push(self.record_terms.len() as u32);
        self.open_record = None;
    }

    /// Number of closed records.
    pub fn records(&self) -> usize {
        self.record_offsets.len() - 1
    }

    /// Number of distinct terms.
    pub fn terms(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency of a term slot (records containing it).
    pub fn df(&self, slot: u32) -> usize {
        self.postings[slot as usize].ids.len()
    }

    /// The sorted posting list of a term slot.
    pub fn posting(&self, slot: u32) -> &[u32] {
        &self.postings[slot as usize].ids
    }

    /// Per-record term frequencies parallel to [`TermIndex::posting`].
    pub fn posting_counts(&self, slot: u32) -> &[u32] {
        &self.postings[slot as usize].counts
    }

    /// Look a term up by its bytes.
    pub fn slot_of(&self, term: &[u8]) -> Option<u32> {
        self.slots.get(term).copied()
    }

    /// The distinct term slots of record `id` with their in-record
    /// occurrence counts.
    pub fn record_terms(&self, id: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.record_offsets[id as usize] as usize;
        let hi = self.record_offsets[id as usize + 1] as usize;
        self.record_terms[lo..hi]
            .iter()
            .copied()
            .zip(self.record_counts[lo..hi].iter().copied())
    }
}

/// Galloping intersection of two sorted distinct lists, appended to
/// `out`. Iterates the shorter list and locates each id in the longer
/// one by exponential search — `O(m log(n / m))`, which beats a linear
/// merge when one list is a stop-gram-sized tail of the other.
pub fn intersect_gallop(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    for &x in small {
        // Gallop: find the first index ≥ lo with large[idx] >= x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        let hi = hi.min(large.len());
        let rel = large[lo..hi].partition_point(|&y| y < x);
        lo += rel;
        if lo < large.len() && large[lo] == x {
            out.push(x);
            lo += 1;
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Multi-way intersection: lists are intersected smallest-first so the
/// running result only shrinks. Returns the ids present in **every**
/// list. `scratch` is working memory reused across calls.
pub fn intersect_all(lists: &mut [&[u32]], scratch: &mut Vec<u32>, out: &mut Vec<u32>) {
    out.clear();
    if lists.is_empty() {
        return;
    }
    lists.sort_by_key(|l| l.len());
    out.extend_from_slice(lists[0]);
    for rest in &lists[1..] {
        scratch.clear();
        intersect_gallop(out, rest, scratch);
        std::mem::swap(out, scratch);
        if out.is_empty() {
            return;
        }
    }
}

/// k-way union with multiplicity: append every id of every list to
/// `scratch`, sort, and emit `(id, occurrences)` runs to `f`. The
/// weighted variant used by the frequency-vector index pushes a weight
/// per occurrence instead; see [`union_weighted`].
pub fn union_counts(lists: &[&[u32]], scratch: &mut Vec<u32>, mut f: impl FnMut(u32, u32)) {
    scratch.clear();
    for list in lists {
        scratch.extend_from_slice(list);
    }
    scratch.sort_unstable();
    let mut i = 0;
    while i < scratch.len() {
        let id = scratch[i];
        let mut n = 0u32;
        while i < scratch.len() && scratch[i] == id {
            n += 1;
            i += 1;
        }
        f(id, n);
    }
}

/// Weighted k-way union: entries are `(id, weight)`; emits
/// `(id, Σ weight)` runs in ascending id order.
pub fn union_weighted(entries: &mut [(u32, u32)], mut f: impl FnMut(u32, u32)) {
    entries.sort_unstable_by_key(|&(id, _)| id);
    let mut i = 0;
    while i < entries.len() {
        let id = entries[i].0;
        let mut acc = 0u32;
        while i < entries.len() && entries[i].0 == id {
            acc += entries[i].1;
            i += 1;
        }
        f(id, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(rows: &[&[&[u8]]]) -> TermIndex {
        let mut ix = TermIndex::new();
        for (i, terms) in rows.iter().enumerate() {
            ix.open_record(i as u32);
            for t in *terms {
                ix.insert(t);
            }
            ix.close_record();
        }
        ix
    }

    #[test]
    fn postings_sorted_distinct_with_counts() {
        let ix = build(&[
            &[b"AB", b"BC", b"AB"],
            &[b"BC"],
            &[b"AB", b"ZZ"],
        ]);
        assert_eq!(ix.records(), 3);
        assert_eq!(ix.terms(), 3);
        let ab = ix.slot_of(b"AB").unwrap();
        assert_eq!(ix.posting(ab), &[0, 2]);
        assert_eq!(ix.posting_counts(ab), &[2, 1]);
        assert_eq!(ix.df(ab), 2);
        let bc = ix.slot_of(b"BC").unwrap();
        assert_eq!(ix.posting(bc), &[0, 1]);
        assert!(ix.slot_of(b"QQ").is_none());
    }

    #[test]
    fn record_terms_round_trip() {
        let ix = build(&[&[b"AB", b"BC", b"AB"], &[b"ZZ"]]);
        let terms: Vec<(u32, u32)> = ix.record_terms(0).collect();
        let ab = ix.slot_of(b"AB").unwrap();
        let bc = ix.slot_of(b"BC").unwrap();
        assert_eq!(terms, vec![(ab, 2), (bc, 1)]);
        assert_eq!(ix.record_terms(1).count(), 1);
    }

    #[test]
    fn gallop_intersection_matches_naive() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[1, 2, 3]),
            (&[2], &[1, 2, 3]),
            (&[1, 5, 9, 100], &[5, 100, 200]),
            (&[1, 2, 3, 4, 5, 6, 7, 8], &[0, 8]),
            (&[3, 50], &(0..64).collect::<Vec<u32>>()),
        ];
        for (a, b) in cases {
            let mut out = Vec::new();
            intersect_gallop(a, b, &mut out);
            let naive: Vec<u32> = a.iter().filter(|x| b.contains(x)).copied().collect();
            assert_eq!(out, naive, "a={a:?} b={b:?}");
            out.clear();
            intersect_gallop(b, a, &mut out);
            assert_eq!(out, naive, "swapped a={a:?} b={b:?}");
        }
    }

    #[test]
    fn intersect_all_requires_every_list() {
        let lists: Vec<&[u32]> = vec![&[1, 2, 3, 9], &[2, 3, 9], &[0, 3, 9, 12]];
        let mut lists = lists;
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        intersect_all(&mut lists, &mut scratch, &mut out);
        assert_eq!(out, vec![3, 9]);
        let mut empty: Vec<&[u32]> = vec![];
        intersect_all(&mut empty, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn union_counts_runs() {
        let lists: Vec<&[u32]> = vec![&[1, 2], &[2, 3], &[2]];
        let mut scratch = Vec::new();
        let mut seen = Vec::new();
        union_counts(&lists, &mut scratch, |id, n| seen.push((id, n)));
        assert_eq!(seen, vec![(1, 1), (2, 3), (3, 1)]);
    }

    #[test]
    fn union_weighted_sums() {
        let mut entries = vec![(4u32, 2u32), (1, 1), (4, 5), (1, 1)];
        let mut seen = Vec::new();
        union_weighted(&mut entries, |id, w| seen.push((id, w)));
        assert_eq!(seen, vec![(1, 2), (4, 7)]);
    }
}
