//! Record similarity (Section 6.5).
//!
//! "The similarity of two records was always computed as the weighted
//! average similarity of their values. Since we observed that the name
//! values are often confused between the individual attributes, we
//! matched every combination of them and used the 1:1 matching with the
//! highest similarity for aggregation. To weight the individual
//! attributes we used again their entropy."

use nc_similarity::assignment::max_weight_assignment;
use nc_similarity::damerau::DamerauLevenshtein;
use nc_similarity::jaro::JaroWinkler;
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::ngram::NgramJaccard;
use nc_similarity::StringSimilarity;

use crate::dataset::Record;

/// The three value measures evaluated in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Monge–Elkan with internal Damerau–Levenshtein (hybrid) — the same
    /// combination used to precalculate the heterogeneity scores.
    MongeElkanLevenshtein,
    /// Jaro–Winkler (sequential).
    JaroWinkler,
    /// Jaccard over trigrams (token-based).
    TrigramJaccard,
}

impl MeasureKind {
    /// All measures, in the paper's presentation order.
    pub const ALL: [MeasureKind; 3] = [
        MeasureKind::MongeElkanLevenshtein,
        MeasureKind::JaroWinkler,
        MeasureKind::TrigramJaccard,
    ];

    /// Display label as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            MeasureKind::MongeElkanLevenshtein => "ME/Lev",
            MeasureKind::JaroWinkler => "JaroWinkler",
            MeasureKind::TrigramJaccard => "Jaccard",
        }
    }

    /// Instantiate the measure.
    pub fn instantiate(self) -> Box<dyn StringSimilarity + Send + Sync> {
        match self {
            MeasureKind::MongeElkanLevenshtein => {
                Box::new(MongeElkan::new(DamerauLevenshtein::new()))
            }
            MeasureKind::JaroWinkler => Box::new(JaroWinkler::new()),
            MeasureKind::TrigramJaccard => Box::new(NgramJaccard::trigram()),
        }
    }
}

/// A weighted record matcher with optional 1:1 name-group matching.
pub struct RecordMatcher {
    measure: Box<dyn StringSimilarity + Send + Sync>,
    /// Normalized weight per attribute.
    weights: Vec<f64>,
    /// Attribute indices whose values may be confused with one another
    /// (the name attributes); empty disables group matching.
    name_group: Vec<usize>,
}

impl RecordMatcher {
    /// Create a matcher.
    ///
    /// `weights` must have one entry per attribute (they are normalized
    /// internally); `name_group` lists the attribute indices that are
    /// matched 1:1 before aggregation.
    pub fn new(
        measure: Box<dyn StringSimilarity + Send + Sync>,
        weights: Vec<f64>,
        name_group: Vec<usize>,
    ) -> Self {
        let total: f64 = weights.iter().sum();
        let weights = if total > 0.0 {
            weights.iter().map(|w| w / total).collect()
        } else if weights.is_empty() {
            weights
        } else {
            vec![1.0 / weights.len() as f64; weights.len()]
        };
        RecordMatcher {
            measure,
            weights,
            name_group,
        }
    }

    /// Convenience constructor from a [`MeasureKind`].
    pub fn with_kind(kind: MeasureKind, weights: Vec<f64>, name_group: Vec<usize>) -> Self {
        Self::new(kind.instantiate(), weights, name_group)
    }

    /// Record similarity in `[0, 1]`.
    ///
    /// Attributes where both values are missing are excluded from the
    /// weighted average (their absence carries no signal); a value
    /// missing on one side only compares against the empty string.
    pub fn similarity(&self, a: &Record, b: &Record) -> f64 {
        debug_assert_eq!(a.values.len(), self.weights.len());
        debug_assert_eq!(b.values.len(), self.weights.len());

        let mut acc = 0.0;
        let mut total_w = 0.0;

        // 1:1 best matching over the name group.
        if !self.name_group.is_empty() {
            let va: Vec<&str> = self.name_group.iter().map(|&i| a.values[i].trim()).collect();
            let vb: Vec<&str> = self.name_group.iter().map(|&i| b.values[i].trim()).collect();
            if va.iter().any(|v| !v.is_empty()) || vb.iter().any(|v| !v.is_empty()) {
                let sims: Vec<Vec<f64>> = va
                    .iter()
                    .map(|x| vb.iter().map(|y| self.measure.sim(x, y)).collect())
                    .collect();
                let assignment = max_weight_assignment(&sims);
                for &(i, j) in &assignment.pairs {
                    // Both positions share the group; weight by the row
                    // attribute's weight.
                    let w = self.weights[self.name_group[i]];
                    if va[i].is_empty() && vb[j].is_empty() {
                        continue;
                    }
                    acc += w * sims[i][j];
                    total_w += w;
                }
            }
        }

        for (k, w) in self.weights.iter().enumerate() {
            if self.name_group.contains(&k) || *w == 0.0 {
                continue;
            }
            let x = a.values[k].trim();
            let y = b.values[k].trim();
            if x.is_empty() && y.is_empty() {
                continue;
            }
            acc += w * self.measure.sim(x, y);
            total_w += w;
        }

        if total_w == 0.0 {
            0.0
        } else {
            (acc / total_w).clamp(0.0, 1.0)
        }
    }
}

impl std::fmt::Debug for RecordMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordMatcher")
            .field("weights", &self.weights)
            .field("name_group", &self.name_group)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values: &[&str]) -> Record {
        Record {
            values: values.iter().map(|s| (*s).to_string()).collect(),
            cluster: 0,
        }
    }

    fn matcher(kind: MeasureKind, n: usize, name_group: Vec<usize>) -> RecordMatcher {
        RecordMatcher::with_kind(kind, vec![1.0; n], name_group)
    }

    #[test]
    fn identical_records_score_one() {
        for kind in MeasureKind::ALL {
            let m = matcher(kind, 3, vec![]);
            let a = rec(&["MARY", "ANN", "SMITH"]);
            assert!((m.similarity(&a, &a.clone()) - 1.0).abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn different_records_score_low() {
        for kind in MeasureKind::ALL {
            let m = matcher(kind, 3, vec![]);
            let a = rec(&["MARY", "ELIZABETH", "FIELDS"]);
            let b = rec(&["XAVIER", "OBI", "ZUKO"]);
            assert!(m.similarity(&a, &b) < 0.5, "{kind:?}");
        }
    }

    #[test]
    fn name_group_rescues_confused_names() {
        let with_group = matcher(MeasureKind::JaroWinkler, 3, vec![0, 1, 2]);
        let without = matcher(MeasureKind::JaroWinkler, 3, vec![]);
        let a = rec(&["DEBRA", "OEHRIE", "WILLIAMS"]);
        let b = rec(&["WILLIAMS", "DEBRA", "OEHRIE"]);
        let sg = with_group.similarity(&a, &b);
        let sp = without.similarity(&a, &b);
        assert!(sg > 0.99, "{sg}");
        assert!(sg > sp, "{sg} vs {sp}");
    }

    #[test]
    fn both_missing_values_are_skipped() {
        let m = matcher(MeasureKind::JaroWinkler, 3, vec![]);
        let a = rec(&["MARY", "", "SMITH"]);
        let b = rec(&["MARY", "", "SMITH"]);
        assert!((m.similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_missing_counts_against() {
        let m = matcher(MeasureKind::TrigramJaccard, 2, vec![]);
        let a = rec(&["MARY", "SMITH"]);
        let b = rec(&["", "SMITH"]);
        let s = m.similarity(&a, &b);
        assert!(s < 1.0 && s > 0.3, "{s}");
    }

    #[test]
    fn weights_shift_the_score() {
        let heavy_first = RecordMatcher::with_kind(
            MeasureKind::JaroWinkler,
            vec![10.0, 1.0],
            vec![],
        );
        let heavy_last = RecordMatcher::with_kind(
            MeasureKind::JaroWinkler,
            vec![1.0, 10.0],
            vec![],
        );
        let a = rec(&["MARY", "SMITH"]);
        let b = rec(&["MARY", "ZZZZZ"]); // first matches, last differs
        assert!(heavy_first.similarity(&a, &b) > heavy_last.similarity(&a, &b));
    }

    #[test]
    fn measure_labels() {
        assert_eq!(MeasureKind::MongeElkanLevenshtein.label(), "ME/Lev");
        assert_eq!(MeasureKind::JaroWinkler.label(), "JaroWinkler");
        assert_eq!(MeasureKind::TrigramJaccard.label(), "Jaccard");
    }

    #[test]
    fn all_empty_records_score_zero() {
        let m = matcher(MeasureKind::JaroWinkler, 2, vec![]);
        let a = rec(&["", ""]);
        assert_eq!(m.similarity(&a, &a.clone()), 0.0);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let m = RecordMatcher::with_kind(MeasureKind::JaroWinkler, vec![0.0, 0.0], vec![]);
        let a = rec(&["MARY", "SMITH"]);
        assert!((m.similarity(&a, &a.clone()) - 1.0).abs() < 1e-9);
    }
}
