//! Search-space reduction (blocking).
//!
//! The paper applies "a multi pass of the Sorted Neighborhood Method …
//! one pass for each of the five most unique attributes and a window of
//! size w = 20" and verifies that no true duplicate is lost. Standard
//! blocking and full pairwise enumeration are provided as baselines for
//! the blocking ablation.

use std::collections::{HashMap, HashSet};

use crate::dataset::{Dataset, Pair};

/// A blocking strategy produces the candidate pair set.
pub trait Blocker {
    /// Candidate pairs for a dataset.
    fn candidates(&self, data: &Dataset) -> HashSet<Pair>;
}

/// All `C(n, 2)` pairs — exact but quadratic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullPairwise;

impl Blocker for FullPairwise {
    fn candidates(&self, data: &Dataset) -> HashSet<Pair> {
        let n = data.len();
        let mut out = HashSet::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.insert(Pair(i, j));
            }
        }
        out
    }
}

/// Standard blocking: records sharing the exact (trimmed) value of the
/// key attribute form a block; all pairs within a block are candidates.
#[derive(Debug, Clone, Copy)]
pub struct StandardBlocking {
    /// Index of the blocking-key attribute.
    pub key: usize,
}

impl Blocker for StandardBlocking {
    fn candidates(&self, data: &Dataset) -> HashSet<Pair> {
        let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, r) in data.records.iter().enumerate() {
            blocks.entry(r.values[self.key].trim()).or_default().push(i);
        }
        let mut out = HashSet::new();
        for members in blocks.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    out.insert(Pair::new(members[i], members[j]));
                }
            }
        }
        out
    }
}

/// Multi-pass Sorted Neighborhood: for every key attribute, sort the
/// records by that attribute's value and pair every two records within a
/// sliding window of size `window`; the union over all passes is the
/// candidate set.
#[derive(Debug, Clone)]
pub struct SortedNeighborhood {
    /// Key attribute indices, one pass per key.
    pub keys: Vec<usize>,
    /// Window size (the paper uses 20).
    pub window: usize,
}

impl SortedNeighborhood {
    /// The paper's configuration: one pass per given key, window 20.
    pub fn multi_pass(keys: Vec<usize>) -> Self {
        SortedNeighborhood { keys, window: 20 }
    }
}

impl Blocker for SortedNeighborhood {
    fn candidates(&self, data: &Dataset) -> HashSet<Pair> {
        assert!(self.window >= 2, "window must cover at least two records");
        let mut out = HashSet::new();
        for &key in &self.keys {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.sort_by(|&a, &b| {
                data.records[a].values[key]
                    .trim()
                    .cmp(data.records[b].values[key].trim())
                    .then(a.cmp(&b))
            });
            for (pos, &i) in order.iter().enumerate() {
                for &j in order[pos + 1..(pos + self.window).min(order.len())].iter() {
                    out.insert(Pair::new(i, j));
                }
            }
        }
        out
    }
}

/// Blocking quality metrics for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of all pairs eliminated (higher = cheaper).
    pub reduction_ratio: f64,
    /// Fraction of gold pairs preserved (higher = safer).
    pub pair_completeness: f64,
    /// Candidate pair count.
    pub candidates: usize,
}

/// Evaluate a candidate set against a dataset's gold standard.
pub fn blocking_quality(data: &Dataset, candidates: &HashSet<Pair>) -> BlockingQuality {
    let n = data.len() as u64;
    let all_pairs = n * n.saturating_sub(1) / 2;
    let gold = data.gold_pairs();
    let found = gold.iter().filter(|p| candidates.contains(p)).count();
    BlockingQuality {
        reduction_ratio: if all_pairs == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / all_pairs as f64
        },
        pair_completeness: if gold.is_empty() {
            1.0
        } else {
            found as f64 / gold.len() as f64
        },
        candidates: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["last".into(), "zip".into()]);
        d.push(vec!["SMITH".into(), "27601".into()], 0);
        d.push(vec!["SMITH".into(), "27601".into()], 0);
        d.push(vec!["SMYTH".into(), "27601".into()], 0);
        d.push(vec!["JONES".into(), "28100".into()], 1);
        d.push(vec!["JONES".into(), "28100".into()], 1);
        d.push(vec!["ZETA".into(), "99999".into()], 2);
        d
    }

    #[test]
    fn full_pairwise_enumerates_everything() {
        let d = data();
        let c = FullPairwise.candidates(&d);
        assert_eq!(c.len(), 15);
        let q = blocking_quality(&d, &c);
        assert_eq!(q.pair_completeness, 1.0);
        assert_eq!(q.reduction_ratio, 0.0);
    }

    #[test]
    fn standard_blocking_groups_equal_keys() {
        let d = data();
        let c = StandardBlocking { key: 0 }.candidates(&d);
        // SMITH block: 1 pair; JONES block: 1 pair.
        assert_eq!(c.len(), 2);
        let q = blocking_quality(&d, &c);
        // The SMYTH typo escapes its block → one gold pair lost… in fact
        // two (SMYTH pairs with both SMITHs).
        assert!(q.pair_completeness < 1.0);
        assert!(q.reduction_ratio > 0.8);
    }

    #[test]
    fn snm_window_catches_near_sorted_neighbors() {
        let d = data();
        let snm = SortedNeighborhood { keys: vec![0], window: 3 };
        let c = snm.candidates(&d);
        // Sorted by last name, SMITH/SMITH/SMYTH are adjacent.
        assert!(c.contains(&Pair(0, 1)));
        assert!(c.contains(&Pair(0, 2)) || c.contains(&Pair(1, 2)));
    }

    #[test]
    fn snm_multi_pass_unions_passes() {
        let d = data();
        let single = SortedNeighborhood { keys: vec![0], window: 2 }.candidates(&d);
        let multi = SortedNeighborhood { keys: vec![0, 1], window: 2 }.candidates(&d);
        assert!(multi.len() >= single.len());
        assert!(single.iter().all(|p| multi.contains(p)));
    }

    #[test]
    fn snm_full_window_equals_full_pairwise() {
        let d = data();
        let c = SortedNeighborhood { keys: vec![0], window: d.len() }.candidates(&d);
        assert_eq!(c.len(), 15);
    }

    #[test]
    fn paper_configuration_loses_no_gold_pair_here() {
        let d = data();
        let c = SortedNeighborhood::multi_pass(vec![0, 1]).candidates(&d);
        let q = blocking_quality(&d, &c);
        assert_eq!(q.pair_completeness, 1.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn degenerate_window_panics() {
        let d = data();
        SortedNeighborhood { keys: vec![0], window: 1 }.candidates(&d);
    }

    #[test]
    fn empty_dataset_yields_no_candidates() {
        let d = Dataset::new(vec!["a".into()]);
        assert!(FullPairwise.candidates(&d).is_empty());
        assert!(StandardBlocking { key: 0 }.candidates(&d).is_empty());
        assert!(SortedNeighborhood { keys: vec![0], window: 5 }
            .candidates(&d)
            .is_empty());
    }
}
