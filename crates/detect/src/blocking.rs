//! Search-space reduction (blocking).
//!
//! The paper applies "a multi pass of the Sorted Neighborhood Method …
//! one pass for each of the five most unique attributes and a window of
//! size w = 20" and verifies that no true duplicate is lost. Standard
//! blocking and full pairwise enumeration are provided as baselines for
//! the blocking ablation.
//!
//! Blockers implement the streaming [`StreamBlocker`] trait and push
//! candidate pairs into a [`CandidateSink`](crate::sink::CandidateSink)
//! as they are found; the original [`Blocker`] trait survives as a
//! blanket compatibility shim that collects the stream into a
//! `HashSet<Pair>`. The indexed strategies live in [`crate::index`].

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::dataset::{Dataset, Pair};
use crate::sink::CandidateSink;

/// A streaming blocking strategy: candidate pairs are pushed into the
/// sink as they are discovered, never materialized by the blocker.
pub trait StreamBlocker {
    /// Stream every candidate pair of `data` into `sink`. Pairs may be
    /// emitted more than once unless [`StreamBlocker::emits_distinct`]
    /// says otherwise.
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink);

    /// Whether this blocker emits every candidate pair exactly once.
    /// Distinct emitters can skip deduplication downstream (e.g. score
    /// pairs as they stream).
    fn emits_distinct(&self) -> bool {
        false
    }
}

/// A blocking strategy produces the candidate pair set.
///
/// Compatibility shim: every [`StreamBlocker`] is a `Blocker` via a
/// blanket impl that collects the stream into a set. Prefer streaming
/// through [`StreamBlocker::stream_into`] — at archive scale the set
/// materialization is the dominant cost.
pub trait Blocker {
    /// Candidate pairs for a dataset.
    fn candidates(&self, data: &Dataset) -> HashSet<Pair>;
}

impl<B: StreamBlocker> Blocker for B {
    fn candidates(&self, data: &Dataset) -> HashSet<Pair> {
        let mut out = HashSet::new();
        self.stream_into(data, &mut out);
        out
    }
}

/// A blocking configuration that cannot produce meaningful candidates.
///
/// Detection runs over archive-scale datasets take hours; aborting one
/// on a bad window via `assert!` (the historical behavior) is not
/// acceptable. Validating constructors return this error instead, and
/// the streaming path documents its clamping fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingConfigError {
    /// A Sorted-Neighborhood window below 2 cannot cover a pair.
    WindowTooSmall {
        /// The rejected window.
        window: usize,
    },
    /// A pass list with no key attributes blocks nothing.
    NoKeys,
    /// A gram size of zero is meaningless.
    ZeroGramSize,
}

impl fmt::Display for BlockingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockingConfigError::WindowTooSmall { window } => {
                write!(f, "sorted-neighborhood window {window} cannot cover two records (needs >= 2)")
            }
            BlockingConfigError::NoKeys => write!(f, "blocking needs at least one key attribute"),
            BlockingConfigError::ZeroGramSize => write!(f, "gram size must be at least 1"),
        }
    }
}

impl std::error::Error for BlockingConfigError {}

/// All `C(n, 2)` pairs — exact but quadratic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullPairwise;

impl StreamBlocker for FullPairwise {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let n = data.len();
        for i in 0..n {
            for j in (i + 1)..n {
                sink.push(Pair(i, j));
            }
        }
    }

    fn emits_distinct(&self) -> bool {
        true
    }
}

/// Standard blocking: records sharing the exact (trimmed) value of the
/// key attribute form a block; all pairs within a block are candidates.
#[derive(Debug, Clone, Copy)]
pub struct StandardBlocking {
    /// Index of the blocking-key attribute.
    pub key: usize,
}

impl StreamBlocker for StandardBlocking {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, r) in data.records.iter().enumerate() {
            blocks.entry(r.values[self.key].trim()).or_default().push(i);
        }
        for members in blocks.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    sink.push(Pair::new(members[i], members[j]));
                }
            }
        }
    }

    // Blocks partition the records, so every pair lives in exactly one
    // block.
    fn emits_distinct(&self) -> bool {
        true
    }
}

/// Multi-pass Sorted Neighborhood: for every key attribute, sort the
/// records by that attribute's value and pair every two records within a
/// sliding window of size `window`; the union over all passes is the
/// candidate set.
#[derive(Debug, Clone)]
pub struct SortedNeighborhood {
    /// Key attribute indices, one pass per key.
    pub keys: Vec<usize>,
    /// Window size (the paper uses 20). Windows below 2 cannot cover a
    /// pair and are clamped to 2 when streaming; use
    /// [`SortedNeighborhood::new`] to reject them up front.
    pub window: usize,
}

impl SortedNeighborhood {
    /// A validated configuration: rejects windows that cannot cover a
    /// pair and empty key lists instead of surprising a long detection
    /// run later.
    pub fn new(keys: Vec<usize>, window: usize) -> Result<Self, BlockingConfigError> {
        if window < 2 {
            return Err(BlockingConfigError::WindowTooSmall { window });
        }
        if keys.is_empty() {
            return Err(BlockingConfigError::NoKeys);
        }
        Ok(SortedNeighborhood { keys, window })
    }

    /// The paper's configuration: one pass per given key, window 20.
    pub fn multi_pass(keys: Vec<usize>) -> Self {
        SortedNeighborhood { keys, window: 20 }
    }

    /// The window actually used when streaming (degenerate configs are
    /// clamped to the smallest window that can cover a pair).
    pub fn effective_window(&self) -> usize {
        self.window.max(2)
    }
}

impl StreamBlocker for SortedNeighborhood {
    fn stream_into(&self, data: &Dataset, sink: &mut dyn CandidateSink) {
        let window = self.effective_window();
        for &key in &self.keys {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.sort_by(|&a, &b| {
                data.records[a].values[key]
                    .trim()
                    .cmp(data.records[b].values[key].trim())
                    .then(a.cmp(&b))
            });
            for (pos, &i) in order.iter().enumerate() {
                for &j in order[pos + 1..(pos + window).min(order.len())].iter() {
                    sink.push(Pair::new(i, j));
                }
            }
        }
    }

    // Distinct within a pass, but passes rediscover each other's pairs.
    fn emits_distinct(&self) -> bool {
        self.keys.len() <= 1
    }
}

/// Blocking quality metrics for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of all pairs eliminated (higher = cheaper).
    pub reduction_ratio: f64,
    /// Fraction of gold pairs preserved (higher = safer).
    pub pair_completeness: f64,
    /// Candidate pair count.
    pub candidates: usize,
}

/// Evaluate a candidate set against a dataset's gold standard.
pub fn blocking_quality(data: &Dataset, candidates: &HashSet<Pair>) -> BlockingQuality {
    let n = data.len() as u64;
    let all_pairs = n * n.saturating_sub(1) / 2;
    let gold = data.gold_pairs();
    let found = gold.iter().filter(|p| candidates.contains(p)).count();
    BlockingQuality {
        reduction_ratio: if all_pairs == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / all_pairs as f64
        },
        pair_completeness: if gold.is_empty() {
            1.0
        } else {
            found as f64 / gold.len() as f64
        },
        candidates: candidates.len(),
    }
}

/// Streaming twin of [`blocking_quality`]: measures candidate volume
/// and pair completeness without materializing the candidate set. The
/// distinct count is taken through a [`crate::sink::PairCollector`]
/// when `distinct` is requested, otherwise the emitted (with
/// multiplicity) count is reported.
pub fn streaming_quality(data: &Dataset, blocker: &dyn StreamBlocker, distinct: bool) -> BlockingQuality {
    let gold = data.gold_pairs();
    let n = data.len() as u64;
    let all_pairs = n * n.saturating_sub(1) / 2;
    let (candidates, found) = if distinct && !blocker.emits_distinct() {
        let mut collector = crate::sink::PairCollector::new();
        blocker.stream_into(data, &mut collector);
        let pairs = collector.finish();
        let found = gold.iter().filter(|p| pairs.binary_search(p).is_ok()).count();
        (pairs.len(), found)
    } else {
        let mut sink = crate::sink::QualitySink::new(&gold);
        blocker.stream_into(data, &mut sink);
        (sink.emitted as usize, sink.gold_hits())
    };
    BlockingQuality {
        reduction_ratio: if all_pairs == 0 {
            0.0
        } else {
            1.0 - candidates as f64 / all_pairs as f64
        },
        pair_completeness: if gold.is_empty() {
            1.0
        } else {
            found as f64 / gold.len() as f64
        },
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["last".into(), "zip".into()]);
        d.push(vec!["SMITH".into(), "27601".into()], 0);
        d.push(vec!["SMITH".into(), "27601".into()], 0);
        d.push(vec!["SMYTH".into(), "27601".into()], 0);
        d.push(vec!["JONES".into(), "28100".into()], 1);
        d.push(vec!["JONES".into(), "28100".into()], 1);
        d.push(vec!["ZETA".into(), "99999".into()], 2);
        d
    }

    #[test]
    fn full_pairwise_enumerates_everything() {
        let d = data();
        let c = FullPairwise.candidates(&d);
        assert_eq!(c.len(), 15);
        let q = blocking_quality(&d, &c);
        assert_eq!(q.pair_completeness, 1.0);
        assert_eq!(q.reduction_ratio, 0.0);
    }

    #[test]
    fn standard_blocking_groups_equal_keys() {
        let d = data();
        let c = StandardBlocking { key: 0 }.candidates(&d);
        // SMITH block: 1 pair; JONES block: 1 pair.
        assert_eq!(c.len(), 2);
        let q = blocking_quality(&d, &c);
        // The SMYTH typo escapes its block → one gold pair lost… in fact
        // two (SMYTH pairs with both SMITHs).
        assert!(q.pair_completeness < 1.0);
        assert!(q.reduction_ratio > 0.8);
    }

    #[test]
    fn snm_window_catches_near_sorted_neighbors() {
        let d = data();
        let snm = SortedNeighborhood { keys: vec![0], window: 3 };
        let c = snm.candidates(&d);
        // Sorted by last name, SMITH/SMITH/SMYTH are adjacent.
        assert!(c.contains(&Pair(0, 1)));
        assert!(c.contains(&Pair(0, 2)) || c.contains(&Pair(1, 2)));
    }

    #[test]
    fn snm_multi_pass_unions_passes() {
        let d = data();
        let single = SortedNeighborhood { keys: vec![0], window: 2 }.candidates(&d);
        let multi = SortedNeighborhood { keys: vec![0, 1], window: 2 }.candidates(&d);
        assert!(multi.len() >= single.len());
        assert!(single.iter().all(|p| multi.contains(p)));
    }

    #[test]
    fn snm_full_window_equals_full_pairwise() {
        let d = data();
        let c = SortedNeighborhood { keys: vec![0], window: d.len() }.candidates(&d);
        assert_eq!(c.len(), 15);
    }

    #[test]
    fn paper_configuration_loses_no_gold_pair_here() {
        let d = data();
        let c = SortedNeighborhood::multi_pass(vec![0, 1]).candidates(&d);
        let q = blocking_quality(&d, &c);
        assert_eq!(q.pair_completeness, 1.0);
    }

    #[test]
    fn degenerate_window_no_longer_panics() {
        // Regression for the old `assert!(window >= 2)` abort: a bad
        // window now clamps to the smallest pair-covering window.
        let d = data();
        let degenerate = SortedNeighborhood { keys: vec![0], window: 1 }.candidates(&d);
        let clamped = SortedNeighborhood { keys: vec![0], window: 2 }.candidates(&d);
        assert_eq!(degenerate, clamped);
        assert_eq!(SortedNeighborhood { keys: vec![0], window: 0 }.effective_window(), 2);
    }

    #[test]
    fn validating_constructor_rejects_bad_configs() {
        assert_eq!(
            SortedNeighborhood::new(vec![0], 1).unwrap_err(),
            BlockingConfigError::WindowTooSmall { window: 1 }
        );
        assert_eq!(
            SortedNeighborhood::new(vec![], 5).unwrap_err(),
            BlockingConfigError::NoKeys
        );
        let ok = SortedNeighborhood::new(vec![0, 1], 5).unwrap();
        assert_eq!(ok.window, 5);
        // The error is a real std error with a readable message.
        let msg = BlockingConfigError::WindowTooSmall { window: 1 }.to_string();
        assert!(msg.contains("window 1"), "{msg}");
        let _: &dyn std::error::Error = &BlockingConfigError::NoKeys;
    }

    #[test]
    fn empty_dataset_yields_no_candidates() {
        let d = Dataset::new(vec!["a".into()]);
        assert!(FullPairwise.candidates(&d).is_empty());
        assert!(StandardBlocking { key: 0 }.candidates(&d).is_empty());
        assert!(SortedNeighborhood { keys: vec![0], window: 5 }
            .candidates(&d)
            .is_empty());
    }

    #[test]
    fn streaming_quality_agrees_with_materialized_quality() {
        let d = data();
        let snm = SortedNeighborhood { keys: vec![0, 1], window: 3 };
        let materialized = blocking_quality(&d, &snm.candidates(&d));
        let streamed = streaming_quality(&d, &snm, true);
        assert_eq!(materialized, streamed);
        // Non-distinct accounting can only report more candidates.
        let emitted = streaming_quality(&d, &snm, false);
        assert!(emitted.candidates >= streamed.candidates);
        assert_eq!(emitted.pair_completeness, streamed.pair_completeness);
    }
}
