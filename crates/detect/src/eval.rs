//! Evaluation: precision, recall, F1 and threshold sweeps (Figure 5).

use std::collections::HashSet;

use crate::blocking::{Blocker, StreamBlocker};
use crate::classify::ScoredPair;
use crate::dataset::{Dataset, Pair};
use crate::matcher::RecordMatcher;
use crate::sink::{CandidateSink, PairCollector};

/// Precision / recall / F1 of a pair decision against a gold standard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF {
    /// Precision: TP / (TP + FP); defined as 1 when nothing is predicted.
    pub precision: f64,
    /// Recall: TP / (TP + FN); defined as 1 when the gold set is empty.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl PrF {
    /// Compute from counts.
    pub fn from_counts(tp: usize, predicted: usize, gold: usize) -> PrF {
        let precision = if predicted == 0 {
            1.0
        } else {
            tp as f64 / predicted as f64
        };
        let recall = if gold == 0 { 1.0 } else { tp as f64 / gold as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrF { precision, recall, f1 }
    }
}

/// Evaluate a predicted pair set against the gold pairs.
pub fn evaluate(predicted: &HashSet<Pair>, gold: &HashSet<Pair>) -> PrF {
    let tp = predicted.iter().filter(|p| gold.contains(p)).count();
    PrF::from_counts(tp, predicted.len(), gold.len())
}

/// Score every candidate pair of a dataset with a matcher.
pub fn score_candidates(
    data: &Dataset,
    blocker: &dyn Blocker,
    matcher: &RecordMatcher,
) -> Vec<ScoredPair> {
    let mut scored: Vec<ScoredPair> = blocker
        .candidates(data)
        .into_iter()
        .map(|pair| ScoredPair {
            pair,
            score: matcher.similarity(&data.records[pair.0], &data.records[pair.1]),
        })
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.pair.cmp(&b.pair)));
    scored
}

/// Streaming twin of [`score_candidates`]: candidate pairs flow from
/// the blocker straight into the matcher without a materialized set.
///
/// Distinct-emitting blockers (`emits_distinct()`) are scored as they
/// stream; multi-pass emitters are deduplicated through a
/// [`PairCollector`] first so no pair is scored twice. The result is
/// identical to [`score_candidates`] over the same blocker.
pub fn score_candidates_streaming(
    data: &Dataset,
    blocker: &dyn StreamBlocker,
    matcher: &RecordMatcher,
) -> Vec<ScoredPair> {
    struct ScoringSink<'a> {
        data: &'a Dataset,
        matcher: &'a RecordMatcher,
        scored: Vec<ScoredPair>,
    }
    impl CandidateSink for ScoringSink<'_> {
        fn push(&mut self, pair: Pair) {
            self.scored.push(ScoredPair {
                pair,
                score: self
                    .matcher
                    .similarity(&self.data.records[pair.0], &self.data.records[pair.1]),
            });
        }
    }

    let mut scored = if blocker.emits_distinct() {
        let mut sink = ScoringSink { data, matcher, scored: Vec::new() };
        blocker.stream_into(data, &mut sink);
        sink.scored
    } else {
        let mut collector = PairCollector::new();
        blocker.stream_into(data, &mut collector);
        collector
            .finish()
            .into_iter()
            .map(|pair| ScoredPair {
                pair,
                score: matcher.similarity(&data.records[pair.0], &data.records[pair.1]),
            })
            .collect()
    };
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.pair.cmp(&b.pair)));
    scored
}

/// One point of an F1-vs-threshold curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Similarity threshold.
    pub threshold: f64,
    /// Quality at that threshold.
    pub prf: PrF,
}

/// Sweep classification thresholds over pre-scored pairs.
///
/// `scored` must be sorted by descending score (as produced by
/// [`score_candidates`]); the sweep then costs `O(|scored| + |thresholds|
/// log |scored|)` via cumulative true-positive counts.
pub fn threshold_sweep(
    scored: &[ScoredPair],
    gold: &HashSet<Pair>,
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    debug_assert!(
        scored.windows(2).all(|w| w[0].score >= w[1].score),
        "scored pairs must be sorted by descending score"
    );
    // cumulative_tp[k] = gold hits among the first k pairs.
    let mut cumulative_tp = Vec::with_capacity(scored.len() + 1);
    cumulative_tp.push(0usize);
    let mut tp = 0usize;
    for s in scored {
        if gold.contains(&s.pair) {
            tp += 1;
        }
        cumulative_tp.push(tp);
    }
    thresholds
        .iter()
        .map(|&t| {
            // Number of pairs with score >= t (partition point in the
            // descending order).
            let k = scored.partition_point(|s| s.score >= t);
            SweepPoint {
                threshold: t,
                prf: PrF::from_counts(cumulative_tp[k], k, gold.len()),
            }
        })
        .collect()
}

/// Evenly spaced thresholds over `[lo, hi]`.
pub fn linspace(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least two points");
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// The best sweep point by F1.
pub fn best_f1(points: &[SweepPoint]) -> Option<SweepPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| a.prf.f1.total_cmp(&b.prf.f1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::FullPairwise;
    use crate::matcher::MeasureKind;

    #[test]
    fn prf_counts() {
        let prf = PrF::from_counts(8, 10, 16);
        assert!((prf.precision - 0.8).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
        assert!((prf.f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn prf_degenerate_cases() {
        let nothing = PrF::from_counts(0, 0, 5);
        assert_eq!(nothing.precision, 1.0);
        assert_eq!(nothing.recall, 0.0);
        assert_eq!(nothing.f1, 0.0);
        let no_gold = PrF::from_counts(0, 0, 0);
        assert_eq!(no_gold.f1, 1.0);
    }

    #[test]
    fn evaluate_pair_sets() {
        let predicted: HashSet<Pair> = [Pair(0, 1), Pair(2, 3)].into();
        let gold: HashSet<Pair> = [Pair(0, 1), Pair(4, 5)].into();
        let prf = evaluate(&predicted, &gold);
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    fn toy_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["first".into(), "last".into()]);
        d.push(vec!["ANNA".into(), "SMITH".into()], 0);
        d.push(vec!["ANNA".into(), "SMYTH".into()], 0);
        d.push(vec!["BOB".into(), "JONES".into()], 1);
        d.push(vec!["ROBERT".into(), "KRAMER".into()], 2);
        d
    }

    #[test]
    fn score_candidates_is_sorted_descending() {
        let d = toy_dataset();
        let m = RecordMatcher::with_kind(MeasureKind::JaroWinkler, vec![1.0, 1.0], vec![]);
        let scored = score_candidates(&d, &FullPairwise, &m);
        assert_eq!(scored.len(), 6);
        assert!(scored.windows(2).all(|w| w[0].score >= w[1].score));
        // The true duplicate must rank first.
        assert_eq!(scored[0].pair, Pair(0, 1));
    }

    #[test]
    fn sweep_tracks_threshold_tradeoff() {
        let d = toy_dataset();
        let m = RecordMatcher::with_kind(MeasureKind::JaroWinkler, vec![1.0, 1.0], vec![]);
        let scored = score_candidates(&d, &FullPairwise, &m);
        let gold = d.gold_pairs();
        let points = threshold_sweep(&scored, &gold, &linspace(0.0, 1.0, 21));
        // At threshold 0 everything is predicted → recall 1, low precision.
        assert_eq!(points[0].prf.recall, 1.0);
        assert!(points[0].prf.precision < 0.5);
        // Recall is non-increasing with the threshold.
        for w in points.windows(2) {
            assert!(w[0].prf.recall >= w[1].prf.recall);
        }
        // Some threshold achieves a perfect F1 on this toy data.
        let best = best_f1(&points).unwrap();
        assert!((best.prf.f1 - 1.0).abs() < 1e-9, "{best:?}");
    }

    #[test]
    fn sweep_matches_naive_classification() {
        let d = toy_dataset();
        let m = RecordMatcher::with_kind(MeasureKind::TrigramJaccard, vec![1.0, 1.0], vec![]);
        let scored = score_candidates(&d, &FullPairwise, &m);
        let gold = d.gold_pairs();
        for &t in &[0.3, 0.5, 0.7, 0.9] {
            let fast = threshold_sweep(&scored, &gold, &[t])[0].prf;
            let slow = evaluate(&crate::classify::classify(&scored, t), &gold);
            assert!((fast.f1 - slow.f1).abs() < 1e-12);
            assert!((fast.precision - slow.precision).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_scoring_matches_materialized_scoring() {
        let d = toy_dataset();
        let m = RecordMatcher::with_kind(MeasureKind::JaroWinkler, vec![1.0, 1.0], vec![]);
        // Distinct emitter (FullPairwise) and a multi-pass emitter.
        let full_set = score_candidates(&d, &FullPairwise, &m);
        let full_stream = score_candidates_streaming(&d, &FullPairwise, &m);
        assert_eq!(full_set, full_stream);
        let snm = crate::blocking::SortedNeighborhood { keys: vec![0, 1], window: 3 };
        let snm_set = score_candidates(&d, &snm, &m);
        let snm_stream = score_candidates_streaming(&d, &snm, &m);
        assert_eq!(snm_set, snm_stream);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.5, 0.9, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[4] - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_needs_two_points() {
        linspace(0.0, 1.0, 1);
    }
}
