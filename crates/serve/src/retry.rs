//! Capped exponential backoff for transient publish failures.
//!
//! A publish into the [`crate::snapshot::SnapshotRegistry`] is cheap
//! but sits on the hot path between ingest and serving: a transient
//! failure (a panicking scorer derivation, a poisoned lock being
//! recovered) should not fail an entire multi-snapshot ingest. The
//! [`RetryPolicy`] re-runs the operation a bounded number of times,
//! sleeping `min(cap, base << attempt)` between tries, and reports
//! every attempt's error text when it gives up.

use std::time::Duration;

/// How often and how patiently to retry a fallible operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to ≥ 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts with 10ms/20ms/40ms backoff — enough to ride out
    /// a transiently poisoned lock without stalling ingest visibly.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        }
    }
}

/// Every attempt failed; the per-attempt error texts, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryExhausted {
    /// One error message per attempt made.
    pub errors: Vec<String>,
}

impl std::fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gave up after {} attempts: [{}]",
            self.errors.len(),
            self.errors.join("; ")
        )
    }
}

impl std::error::Error for RetryExhausted {}

impl RetryPolicy {
    /// An immediate policy for tests: `attempts` tries, no sleeping.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The sleep before retry number `retry` (0-based).
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Run `op` until it succeeds or the attempt budget is spent. The
    /// closure receives the 0-based attempt number.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, String>,
    ) -> Result<T, RetryExhausted> {
        let attempts = self.attempts.max(1);
        let mut errors = Vec::new();
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) => errors.push(err),
            }
            if attempt + 1 < attempts {
                let sleep = self.backoff(attempt);
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
        Err(RetryExhausted { errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_short_circuits() {
        let mut calls = 0;
        let out = RetryPolicy::immediate(5).run(|_| {
            calls += 1;
            Ok::<_, String>(42)
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let out = RetryPolicy::immediate(5).run(|attempt| {
            if attempt < 2 {
                Err(format!("transient {attempt}"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
    }

    #[test]
    fn exhaustion_reports_every_error() {
        let out = RetryPolicy::immediate(3).run(|attempt| Err::<(), _>(format!("e{attempt}")));
        let err = out.unwrap_err();
        assert_eq!(err.errors, vec!["e0", "e1", "e2"]);
        let text = err.to_string();
        assert!(text.contains("3 attempts"));
        assert!(text.contains("e1"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(35));
        assert_eq!(policy.backoff(31), Duration::from_millis(35));
        assert_eq!(policy.backoff(32), Duration::from_millis(35), "shift overflow saturates");
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let mut calls = 0;
        let out = RetryPolicy::immediate(0).run(|_| {
            calls += 1;
            Err::<(), _>("nope".to_string())
        });
        assert_eq!(calls, 1);
        assert_eq!(out.unwrap_err().errors.len(), 1);
    }
}
