//! `nc-serve`: a concurrent dataset-carving service.
//!
//! The paper's end product is a *service*: users request customized
//! test datasets of a chosen dirtiness (NC1/NC2/NC3), carved out of a
//! versioned cluster store, and versioning metadata keeps every
//! published dataset reconstructible (Sections 4–5). This crate turns
//! the in-process pipeline into that service:
//!
//! * [`snapshot`] — versioned snapshot reads. An `Arc`-swapped,
//!   immutable [`snapshot::ServeSnapshot`] (a
//!   [`nc_core::snapshot::StoreSnapshot`] plus its deterministic
//!   entropy scorer) is published into a [`snapshot::SnapshotRegistry`];
//!   carve requests clone the `Arc` under a brief read lock and then
//!   run entirely lock-free against a consistent version while newer
//!   snapshots are published underneath.
//! * [`carve`] + [`cache`] — the carve engine. A request names a
//!   version, customization parameters (explicit bounds or the
//!   `nc1`/`nc2`/`nc3` presets) and a page window. A canonical
//!   predicate fingerprint ([`nc_core::md5`] over the pinned version
//!   and the bit-exact parameters) keys a bounded LRU cache of carve
//!   results, so warm requests skip the cluster scan entirely;
//!   hit/miss/eviction counters are exported via `/metrics`.
//! * [`http`] + [`server`] — a from-scratch HTTP/1.1 front end over
//!   `std::net::TcpListener` (no new dependencies; the offline
//!   `.verify` stub harness keeps working). `GET /healthz`,
//!   `GET /metrics` (text counters and per-endpoint latency
//!   histograms), `POST /carve` and `GET /datasets/{nc1|nc2|nc3}`
//!   return paginated labeled records as JSON lines. A JSON body on
//!   `POST /carve` switches to *carve-by-query*: the document is
//!   compiled by [`nc_query`] into an index-aware plan over the
//!   snapshot's cluster catalog, and `POST /carve/explain` reports that
//!   plan (indexed vs scanned conjuncts, estimated rows) without
//!   executing it. Shutdown is graceful: the acceptor stops, queued
//!   and in-flight requests are drained, then the workers exit.
//! * **Change deltas** — a publish can carry a
//!   [`snapshot::PublishDelta`] naming the clusters founded and
//!   revised since the previous version. The carve engine uses it to
//!   reconcile the warm cache across versions (carry forward carves
//!   whose sampled clusters are untouched, bit-identically; invalidate
//!   entries for retention-evicted versions), and
//!   `GET /watch?from=<version>` streams the recorded delta window as
//!   chunked JSON lines so subscribers can catch up incrementally —
//!   or learn (via `410 Gone`) that they must re-fetch a full carve.
//!
//! Requests are dispatched to a crossbeam-channel worker pool sized by
//! [`nc_core::scoring::ScoringConfig`] — the same "0 means hardware
//! parallelism, degrade to inline on one core" machinery the scoring
//! pool uses.
//!
//! Correctness invariant (asserted by `tests/serve.rs`): a carve
//! response pinned to version `v` is **bit-identical** to calling
//! [`nc_core::customize::customize`] directly against the version-`v`
//! store with the same parameters — cached or not, from any number of
//! concurrent clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod carve;
pub mod fingerprint;
pub mod http;
pub mod metrics;
pub mod retry;
pub mod server;
pub mod snapshot;

pub use carve::{
    CacheStatus, CarveEngine, CarveError, CarveOutcome, CarveRequest, CarveResult, DeltaStats,
    QueryCarve, QueryStats,
};
pub use fingerprint::{knob_fingerprint, query_fingerprint};
pub use retry::{RetryExhausted, RetryPolicy};
pub use server::{Server, ServerHandle, ServeConfig, ServeState};
pub use snapshot::{PublishDelta, ServeSnapshot, SnapshotRegistry, WatchWindow};
