//! Versioned snapshot publication and lock-free snapshot reads.
//!
//! A [`ServeSnapshot`] bundles an immutable
//! [`nc_core::snapshot::StoreSnapshot`] with the entropy-weighted
//! heterogeneity scorer derived from it (one record per cluster, as the
//! paper prescribes), so every carve against the same version uses the
//! same weights. The [`SnapshotRegistry`] holds the current snapshot
//! behind an `Arc` that is *swapped* on publish: readers take a brief
//! read lock only to clone the `Arc`, then carve against the pinned,
//! immutable data with no lock held — a publish never blocks or
//! invalidates an in-flight carve.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use nc_core::cluster::ClusterStore;
use nc_core::customize::{CustomDataset, CustomizeParams};
use nc_core::heterogeneity::{HeterogeneityScorer, Scope};
use nc_core::snapshot::StoreSnapshot;
use nc_query::ClusterCatalog;

/// An immutable snapshot ready to serve carve requests.
#[derive(Debug)]
pub struct ServeSnapshot {
    store: StoreSnapshot,
    scorer: HeterogeneityScorer,
    /// The query catalog, built lazily on the first carve-by-query and
    /// shared by every subsequent query against this version.
    catalog: OnceLock<Arc<ClusterCatalog>>,
}

impl ServeSnapshot {
    /// Wrap a captured store snapshot, deriving its entropy scorer
    /// (deterministic for a given snapshot).
    pub fn new(store: StoreSnapshot) -> Self {
        let scorer = store.entropy_scorer(Scope::Person);
        ServeSnapshot {
            store,
            scorer,
            catalog: OnceLock::new(),
        }
    }

    /// Capture the current contents of a store under `version` and wrap
    /// them (convenience for [`StoreSnapshot::capture`] + [`Self::new`]).
    pub fn capture(store: &ClusterStore, version: u32) -> Self {
        Self::new(StoreSnapshot::capture(store, version))
    }

    /// The pinned version identifier.
    pub fn version(&self) -> u32 {
        self.store.version()
    }

    /// Number of clusters in the snapshot.
    pub fn cluster_count(&self) -> usize {
        self.store.cluster_count()
    }

    /// Number of records in the snapshot.
    pub fn record_count(&self) -> u64 {
        self.store.record_count()
    }

    /// The underlying store snapshot.
    pub fn store(&self) -> &StoreSnapshot {
        &self.store
    }

    /// The snapshot's entropy-weighted scorer.
    pub fn scorer(&self) -> &HeterogeneityScorer {
        &self.scorer
    }

    /// The cluster catalog query pipelines run against, built on first
    /// use (one scoring pass over the snapshot) and cached for the
    /// snapshot's lifetime. Valid only for this snapshot — the catalog's
    /// heterogeneity values depend on this version's entropy weights.
    pub fn catalog(&self) -> &Arc<ClusterCatalog> {
        self.catalog
            .get_or_init(|| Arc::new(ClusterCatalog::build(&self.store, &self.scorer)))
    }

    /// Carve a customized dataset out of this snapshot. Pure function
    /// of `(snapshot, params)`; bit-identical to
    /// [`nc_core::customize::customize`] on the source store.
    pub fn carve(&self, params: &CustomizeParams) -> CustomDataset {
        self.store.customize(&self.scorer, params)
    }
}

/// The cluster-level difference between two consecutively published
/// versions, derived from the shard WAL by the change stream
/// (`nc-stream`) and threaded through publishes so downstream caches
/// invalidate *only* what actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PublishDelta {
    /// The version this delta publishes (the transition's target).
    pub version: u32,
    /// Date label of the last source snapshot folded in (informational).
    pub date: String,
    /// Trimmed NCIDs of clusters founded since the previous version,
    /// first-seen order.
    pub founded: Vec<String>,
    /// Trimmed NCIDs of pre-existing clusters whose WAL rows changed
    /// since the previous version, first-seen order. Conservative:
    /// includes clusters whose new rows were all duplicate-dropped.
    pub revised: Vec<String>,
}

impl PublishDelta {
    /// Every dirty cluster id (founded then revised), for incremental
    /// re-scoring.
    pub fn dirty_clusters(&self) -> impl Iterator<Item = &str> {
        self.founded
            .iter()
            .chain(self.revised.iter())
            .map(String::as_str)
    }

    /// True when nothing changed between the two versions.
    pub fn is_empty(&self) -> bool {
        self.founded.is_empty() && self.revised.is_empty()
    }
}

/// What a [`SnapshotRegistry::publish_with_delta`] did, for callers
/// that reconcile downstream state (the carve cache).
#[derive(Debug)]
pub struct PublishOutcome {
    /// The newly current snapshot.
    pub snapshot: Arc<ServeSnapshot>,
    /// The version that was current before this publish.
    pub previous_version: u32,
    /// Versions evicted from history by the retention limit.
    pub evicted: Vec<u32>,
}

/// The set of published snapshots: one *current* version plus a history
/// of still-pinnable older versions.
///
/// Lock poisoning is tolerated on every path: the guarded data is a
/// pair of `Arc`s whose every mutation is a single assignment, so a
/// panic between lock and unlock cannot leave it half-updated, and a
/// registry shared with a panicking worker keeps serving.
#[derive(Debug)]
pub struct SnapshotRegistry {
    inner: RwLock<Inner>,
    /// Maximum number of versions kept pinnable (0 = unlimited). The
    /// current version is never evicted.
    history_limit: usize,
}

#[derive(Debug)]
struct Inner {
    current: Arc<ServeSnapshot>,
    history: BTreeMap<u32, Arc<ServeSnapshot>>,
    /// Per-version publish deltas, for `/watch` and cache
    /// reconciliation. A version published without a delta leaves a
    /// gap here, which `watch_since` reports honestly.
    deltas: BTreeMap<u32, Arc<PublishDelta>>,
}

impl SnapshotRegistry {
    /// Create a registry serving `initial` as the current version, with
    /// unlimited version retention.
    pub fn new(initial: ServeSnapshot) -> Self {
        Self::with_retention(initial, 0)
    }

    /// Create a registry keeping at most `history_limit` versions
    /// pinnable (`0` = unlimited). Older versions are evicted on
    /// publish, oldest first; the current version always survives.
    pub fn with_retention(initial: ServeSnapshot, history_limit: usize) -> Self {
        let current = Arc::new(initial);
        let mut history = BTreeMap::new();
        history.insert(current.version(), Arc::clone(&current));
        SnapshotRegistry {
            inner: RwLock::new(Inner {
                current,
                history,
                deltas: BTreeMap::new(),
            }),
            history_limit,
        }
    }

    /// Publish a new snapshot: it becomes the current version and stays
    /// addressable by its version number. In-flight carves against the
    /// previous snapshot are unaffected — they hold their own `Arc`.
    pub fn publish(&self, snapshot: ServeSnapshot) -> Arc<ServeSnapshot> {
        self.publish_with_delta(snapshot, None).snapshot
    }

    /// Publish a new snapshot together with the cluster-level delta
    /// that produced it. The delta is retained (keyed by the new
    /// version) for `/watch` subscribers and cache reconciliation, and
    /// the retention limit evicts the oldest versions (and their
    /// deltas) beyond `history_limit`.
    pub fn publish_with_delta(
        &self,
        snapshot: ServeSnapshot,
        delta: Option<PublishDelta>,
    ) -> PublishOutcome {
        let snapshot = Arc::new(snapshot);
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let previous_version = inner.current.version();
        inner.history.insert(snapshot.version(), Arc::clone(&snapshot));
        inner.current = Arc::clone(&snapshot);
        if let Some(delta) = delta {
            inner.deltas.insert(snapshot.version(), Arc::new(delta));
        }
        let mut evicted = Vec::new();
        if self.history_limit > 0 {
            let current_version = snapshot.version();
            while inner.history.len() > self.history_limit {
                let Some((&oldest, _)) = inner.history.iter().next() else {
                    break;
                };
                if oldest == current_version {
                    break; // never evict the current version
                }
                inner.history.remove(&oldest);
                inner.deltas.remove(&oldest);
                evicted.push(oldest);
            }
        }
        PublishOutcome {
            snapshot,
            previous_version,
            evicted,
        }
    }

    /// The current snapshot (brief read lock, then lock-free use).
    pub fn current(&self) -> Arc<ServeSnapshot> {
        Arc::clone(&self.inner.read().unwrap_or_else(PoisonError::into_inner).current)
    }

    /// The snapshot for `version`, or the current one when `None`.
    /// Returns `None` for versions that were never published here.
    pub fn pinned(&self, version: Option<u32>) -> Option<Arc<ServeSnapshot>> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        match version {
            None => Some(Arc::clone(&inner.current)),
            Some(v) => inner.history.get(&v).map(Arc::clone),
        }
    }

    /// The published version numbers, ascending.
    pub fn versions(&self) -> Vec<u32> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .history
            .keys()
            .copied()
            .collect()
    }

    /// The delta window a `/watch` subscriber at version `from` needs
    /// to catch up to the current version.
    ///
    /// The window is *complete* only when a recorded delta exists for
    /// every version in `from+1 ..= current`; any hole (a version
    /// published without a delta, a delta evicted by retention, or a
    /// cursor predating this registry) flips `gap` and empties the
    /// delta list, because a partial delta chain cannot be applied
    /// soundly — the client must re-fetch a full carve instead.
    pub fn watch_since(&self, from: u32) -> WatchWindow {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let current = inner.current.version();
        let mut deltas = Vec::new();
        let mut gap = false;
        let mut v = from;
        while v < current {
            v += 1;
            match inner.deltas.get(&v) {
                Some(delta) => deltas.push(Arc::clone(delta)),
                None => {
                    gap = true;
                    deltas.clear();
                    break;
                }
            }
        }
        WatchWindow {
            current,
            deltas,
            gap,
        }
    }
}

/// The answer to [`SnapshotRegistry::watch_since`].
#[derive(Debug)]
pub struct WatchWindow {
    /// The currently published version.
    pub current: u32,
    /// Deltas for versions `from+1 ..= current`, ascending; empty when
    /// the subscriber is already current or when `gap` is set.
    pub deltas: Vec<Arc<PublishDelta>>,
    /// True when the recorded delta chain does not reach back to
    /// `from`; the subscriber must re-fetch a full carve.
    pub gap: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, NCID, Row};

    fn store(tag: &str, n: usize) -> ClusterStore {
        let mut store = ClusterStore::new();
        for i in 0..n {
            let mut r = Row::empty();
            r.set(NCID, format!("{tag}{i}"));
            r.set(FIRST_NAME, "PAT");
            r.set(LAST_NAME, format!("SMITH{i}"));
            store.import_row(r, DedupPolicy::Trimmed, "s1", 1);
        }
        store
    }

    #[test]
    fn publish_swaps_current_and_keeps_history() {
        let registry = SnapshotRegistry::new(ServeSnapshot::capture(&store("A", 3), 1));
        assert_eq!(registry.current().version(), 1);

        let old = registry.current();
        registry.publish(ServeSnapshot::capture(&store("B", 5), 2));
        assert_eq!(registry.current().version(), 2);
        assert_eq!(registry.versions(), vec![1, 2]);

        // The old Arc still reads the old data.
        assert_eq!(old.cluster_count(), 3);
        assert_eq!(registry.pinned(Some(1)).unwrap().cluster_count(), 3);
        assert_eq!(registry.pinned(Some(2)).unwrap().cluster_count(), 5);
        assert_eq!(registry.pinned(None).unwrap().version(), 2);
        assert!(registry.pinned(Some(9)).is_none());
    }

    fn delta(version: u32, founded: &[&str], revised: &[&str]) -> PublishDelta {
        PublishDelta {
            version,
            date: format!("d{version}"),
            founded: founded.iter().map(|s| s.to_string()).collect(),
            revised: revised.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn retention_evicts_oldest_versions_but_never_current() {
        let registry =
            SnapshotRegistry::with_retention(ServeSnapshot::capture(&store("A", 2), 1), 2);
        let out2 = registry
            .publish_with_delta(ServeSnapshot::capture(&store("B", 2), 2), Some(delta(2, &[], &[])));
        assert_eq!(out2.previous_version, 1);
        assert!(out2.evicted.is_empty());
        let out3 = registry
            .publish_with_delta(ServeSnapshot::capture(&store("C", 2), 3), Some(delta(3, &[], &[])));
        assert_eq!(out3.evicted, vec![1]);
        assert_eq!(registry.versions(), vec![2, 3]);
        assert!(registry.pinned(Some(1)).is_none(), "evicted version is gone");
        assert_eq!(registry.current().version(), 3);
    }

    #[test]
    fn watch_since_returns_complete_windows_or_reports_gaps() {
        let registry = SnapshotRegistry::new(ServeSnapshot::capture(&store("A", 2), 1));
        registry.publish_with_delta(
            ServeSnapshot::capture(&store("B", 2), 2),
            Some(delta(2, &["N1"], &["A0"])),
        );
        registry.publish_with_delta(
            ServeSnapshot::capture(&store("C", 2), 3),
            Some(delta(3, &[], &["A1"])),
        );

        let w = registry.watch_since(1);
        assert!(!w.gap);
        assert_eq!(w.current, 3);
        assert_eq!(w.deltas.len(), 2);
        assert_eq!(w.deltas[0].version, 2);
        assert_eq!(w.deltas[0].founded, vec!["N1".to_string()]);
        assert_eq!(w.deltas[1].version, 3);

        // Already current: empty window, no gap.
        let w3 = registry.watch_since(3);
        assert!(!w3.gap && w3.deltas.is_empty());

        // A cursor predating the registry's first version hits the
        // missing delta for version 1 and reports a gap.
        let w0 = registry.watch_since(0);
        assert!(w0.gap && w0.deltas.is_empty());

        // A publish without a delta punches a hole in later windows.
        registry.publish(ServeSnapshot::capture(&store("D", 2), 4));
        let w = registry.watch_since(2);
        assert!(w.gap);
        assert_eq!(w.current, 4);
    }

    #[test]
    fn carve_is_deterministic_per_snapshot() {
        let snap = ServeSnapshot::capture(&store("A", 6), 1);
        let params = CustomizeParams::nc3(4, 4, 7);
        let a = snap.carve(&params);
        let b = snap.carve(&params);
        assert_eq!(a.clusters.len(), b.clusters.len());
        for (x, y) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(x.ncid, y.ncid);
            assert_eq!(x.records.len(), y.records.len());
        }
    }
}
