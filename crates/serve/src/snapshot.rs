//! Versioned snapshot publication and lock-free snapshot reads.
//!
//! A [`ServeSnapshot`] bundles an immutable
//! [`nc_core::snapshot::StoreSnapshot`] with the entropy-weighted
//! heterogeneity scorer derived from it (one record per cluster, as the
//! paper prescribes), so every carve against the same version uses the
//! same weights. The [`SnapshotRegistry`] holds the current snapshot
//! behind an `Arc` that is *swapped* on publish: readers take a brief
//! read lock only to clone the `Arc`, then carve against the pinned,
//! immutable data with no lock held — a publish never blocks or
//! invalidates an in-flight carve.

use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock};

use nc_core::cluster::ClusterStore;
use nc_core::customize::{CustomDataset, CustomizeParams};
use nc_core::heterogeneity::{HeterogeneityScorer, Scope};
use nc_core::snapshot::StoreSnapshot;

/// An immutable snapshot ready to serve carve requests.
#[derive(Debug)]
pub struct ServeSnapshot {
    store: StoreSnapshot,
    scorer: HeterogeneityScorer,
}

impl ServeSnapshot {
    /// Wrap a captured store snapshot, deriving its entropy scorer
    /// (deterministic for a given snapshot).
    pub fn new(store: StoreSnapshot) -> Self {
        let scorer = store.entropy_scorer(Scope::Person);
        ServeSnapshot { store, scorer }
    }

    /// Capture the current contents of a store under `version` and wrap
    /// them (convenience for [`StoreSnapshot::capture`] + [`Self::new`]).
    pub fn capture(store: &ClusterStore, version: u32) -> Self {
        Self::new(StoreSnapshot::capture(store, version))
    }

    /// The pinned version identifier.
    pub fn version(&self) -> u32 {
        self.store.version()
    }

    /// Number of clusters in the snapshot.
    pub fn cluster_count(&self) -> usize {
        self.store.cluster_count()
    }

    /// Number of records in the snapshot.
    pub fn record_count(&self) -> u64 {
        self.store.record_count()
    }

    /// The underlying store snapshot.
    pub fn store(&self) -> &StoreSnapshot {
        &self.store
    }

    /// The snapshot's entropy-weighted scorer.
    pub fn scorer(&self) -> &HeterogeneityScorer {
        &self.scorer
    }

    /// Carve a customized dataset out of this snapshot. Pure function
    /// of `(snapshot, params)`; bit-identical to
    /// [`nc_core::customize::customize`] on the source store.
    pub fn carve(&self, params: &CustomizeParams) -> CustomDataset {
        self.store.customize(&self.scorer, params)
    }
}

/// The set of published snapshots: one *current* version plus a history
/// of still-pinnable older versions.
///
/// Lock poisoning is tolerated on every path: the guarded data is a
/// pair of `Arc`s whose every mutation is a single assignment, so a
/// panic between lock and unlock cannot leave it half-updated, and a
/// registry shared with a panicking worker keeps serving.
#[derive(Debug)]
pub struct SnapshotRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug)]
struct Inner {
    current: Arc<ServeSnapshot>,
    history: BTreeMap<u32, Arc<ServeSnapshot>>,
}

impl SnapshotRegistry {
    /// Create a registry serving `initial` as the current version.
    pub fn new(initial: ServeSnapshot) -> Self {
        let current = Arc::new(initial);
        let mut history = BTreeMap::new();
        history.insert(current.version(), Arc::clone(&current));
        SnapshotRegistry {
            inner: RwLock::new(Inner { current, history }),
        }
    }

    /// Publish a new snapshot: it becomes the current version and stays
    /// addressable by its version number. In-flight carves against the
    /// previous snapshot are unaffected — they hold their own `Arc`.
    pub fn publish(&self, snapshot: ServeSnapshot) -> Arc<ServeSnapshot> {
        let snapshot = Arc::new(snapshot);
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        inner.history.insert(snapshot.version(), Arc::clone(&snapshot));
        inner.current = Arc::clone(&snapshot);
        snapshot
    }

    /// The current snapshot (brief read lock, then lock-free use).
    pub fn current(&self) -> Arc<ServeSnapshot> {
        Arc::clone(&self.inner.read().unwrap_or_else(PoisonError::into_inner).current)
    }

    /// The snapshot for `version`, or the current one when `None`.
    /// Returns `None` for versions that were never published here.
    pub fn pinned(&self, version: Option<u32>) -> Option<Arc<ServeSnapshot>> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        match version {
            None => Some(Arc::clone(&inner.current)),
            Some(v) => inner.history.get(&v).map(Arc::clone),
        }
    }

    /// The published version numbers, ascending.
    pub fn versions(&self) -> Vec<u32> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .history
            .keys()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, NCID, Row};

    fn store(tag: &str, n: usize) -> ClusterStore {
        let mut store = ClusterStore::new();
        for i in 0..n {
            let mut r = Row::empty();
            r.set(NCID, format!("{tag}{i}"));
            r.set(FIRST_NAME, "PAT");
            r.set(LAST_NAME, format!("SMITH{i}"));
            store.import_row(r, DedupPolicy::Trimmed, "s1", 1);
        }
        store
    }

    #[test]
    fn publish_swaps_current_and_keeps_history() {
        let registry = SnapshotRegistry::new(ServeSnapshot::capture(&store("A", 3), 1));
        assert_eq!(registry.current().version(), 1);

        let old = registry.current();
        registry.publish(ServeSnapshot::capture(&store("B", 5), 2));
        assert_eq!(registry.current().version(), 2);
        assert_eq!(registry.versions(), vec![1, 2]);

        // The old Arc still reads the old data.
        assert_eq!(old.cluster_count(), 3);
        assert_eq!(registry.pinned(Some(1)).unwrap().cluster_count(), 3);
        assert_eq!(registry.pinned(Some(2)).unwrap().cluster_count(), 5);
        assert_eq!(registry.pinned(None).unwrap().version(), 2);
        assert!(registry.pinned(Some(9)).is_none());
    }

    #[test]
    fn carve_is_deterministic_per_snapshot() {
        let snap = ServeSnapshot::capture(&store("A", 6), 1);
        let params = CustomizeParams::nc3(4, 4, 7);
        let a = snap.carve(&params);
        let b = snap.carve(&params);
        assert_eq!(a.clusters.len(), b.clusters.len());
        for (x, y) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(x.ncid, y.ncid);
            assert_eq!(x.records.len(), y.records.len());
        }
    }
}
