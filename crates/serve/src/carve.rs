//! The carve engine: versioned carve requests, canonical parameter
//! fingerprints, and the cached execution path.
//!
//! A [`CarveRequest`] names a snapshot version (or "current"), the
//! customization parameters — explicit heterogeneity bounds or one of
//! the paper's `nc1`/`nc2`/`nc3` presets — and a page window over the
//! resulting labeled records. Because carving is a pure function of
//! `(version, params)`, the engine fingerprints that pair with
//! [`nc_core::md5`] and consults a bounded LRU cache before scanning
//! clusters; pagination slices the cached result, so paging through a
//! large carve costs one carve total.

use std::fmt;
use std::sync::Arc;

use nc_core::customize::{CustomDataset, CustomizeParams};
use nc_core::md5::{md5, Digest};
use nc_votergen::schema::{Row, SCHEMA};

use crate::cache::{CacheStats, LruCache};
use crate::snapshot::{PublishDelta, SnapshotRegistry};

/// A request to carve one page of a customized dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CarveRequest {
    /// Snapshot version to pin, or `None` for the current one.
    pub version: Option<u32>,
    /// Customization parameters (bounds, sample/output sizes, seed).
    pub params: CustomizeParams,
    /// Zero-based page index over the labeled records.
    pub page: usize,
    /// Records per page.
    pub page_size: usize,
}

/// Defaults used when a request names a preset or omits parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestDefaults {
    /// Default number of clusters to sample.
    pub sample: usize,
    /// Default number of output clusters.
    pub output: usize,
    /// Default sampling seed.
    pub seed: u64,
    /// Default page size.
    pub page_size: usize,
    /// Upper bound on the page size a client may request.
    pub max_page_size: usize,
}

/// Whether a carve was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache.
    Hit,
    /// Carved fresh and inserted into the cache.
    Miss,
}

impl CacheStatus {
    /// The value reported in the `X-Cache` response header.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// Why a carve request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CarveError {
    /// The requested snapshot version was never published.
    UnknownVersion(u32),
    /// The parameters are malformed (reason attached).
    InvalidParams(String),
}

impl fmt::Display for CarveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarveError::UnknownVersion(v) => write!(f, "unknown snapshot version {v}"),
            CarveError::InvalidParams(why) => write!(f, "invalid parameters: {why}"),
        }
    }
}

impl std::error::Error for CarveError {}

/// A fully carved dataset with its JSON lines pre-rendered, shared via
/// `Arc` between the cache and any number of concurrent responses.
#[derive(Debug)]
pub struct CarveResult {
    /// The snapshot version the carve was pinned to *when first
    /// computed*. A carried-forward cache entry keeps this original
    /// version — responses report the resolved version from
    /// [`CarveOutcome::version`], not from here.
    pub version: u32,
    /// The parameters the carve was computed with (needed to re-key a
    /// carried-forward entry under a new version's fingerprint).
    pub params: CustomizeParams,
    /// NCIDs of every cluster the carve *sampled* (pre-ranking),
    /// sorted ascending for binary search. A publish delta whose
    /// revised set is disjoint from this makes the entry bit-identical
    /// at the new version (see [`CarveEngine::publish`]).
    pub sampled: Vec<String>,
    /// Number of clusters in the carved dataset.
    pub clusters: usize,
    /// Total number of labeled records (== `lines.len()`).
    pub records: usize,
    /// Duplicate pairs in the gold standard.
    pub duplicate_pairs: u64,
    /// One JSON object per labeled record, in dataset order.
    pub lines: Vec<String>,
}

impl CarveResult {
    /// Render a carved dataset into its response form.
    pub fn render(version: u32, params: &CustomizeParams, dataset: &CustomDataset) -> Self {
        let lines = render_lines(dataset);
        let mut sampled = dataset.sampled.clone();
        sampled.sort_unstable();
        CarveResult {
            version,
            params: params.clone(),
            sampled,
            clusters: dataset.clusters.len(),
            records: lines.len(),
            duplicate_pairs: dataset.duplicate_pairs(),
            lines,
        }
    }

    /// The lines of one page (empty when the page is past the end).
    pub fn page(&self, page: usize, page_size: usize) -> &[String] {
        let start = page.saturating_mul(page_size).min(self.lines.len());
        let end = start.saturating_add(page_size).min(self.lines.len());
        &self.lines[start..end]
    }
}

/// The outcome of a successful carve.
#[derive(Debug)]
pub struct CarveOutcome {
    /// The version actually served (resolved from "current" if unpinned).
    pub version: u32,
    /// Whether the result came from the cache.
    pub status: CacheStatus,
    /// The shared carve result.
    pub result: Arc<CarveResult>,
}

/// Publish-time cache reconciliation counters, exported via `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Entries invalidated because their version died or their carve
    /// intersected a publish delta.
    pub invalidated: u64,
    /// Entries re-keyed to a new version because the publish delta
    /// provably did not affect them.
    pub carried_forward: u64,
}

/// The carve engine: snapshot resolution + fingerprinted cache + carve.
#[derive(Debug)]
pub struct CarveEngine {
    registry: Arc<SnapshotRegistry>,
    cache: LruCache<CarveResult>,
    invalidated: std::sync::atomic::AtomicU64,
    carried_forward: std::sync::atomic::AtomicU64,
}

impl CarveEngine {
    /// Create an engine over a snapshot registry with a cache of
    /// `cache_capacity` carve results (0 disables caching).
    pub fn new(registry: Arc<SnapshotRegistry>, cache_capacity: usize) -> Self {
        CarveEngine {
            registry,
            cache: LruCache::new(cache_capacity),
            invalidated: std::sync::atomic::AtomicU64::new(0),
            carried_forward: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// Cache counters for `/metrics`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Publish-time reconciliation counters for `/metrics`.
    pub fn delta_stats(&self) -> DeltaStats {
        use std::sync::atomic::Ordering;
        DeltaStats {
            invalidated: self.invalidated.load(Ordering::Relaxed),
            carried_forward: self.carried_forward.load(Ordering::Relaxed),
        }
    }

    /// Publish a snapshot through the registry and reconcile the carve
    /// cache against it.
    ///
    /// Two reconciliation steps run, in order:
    ///
    /// 1. **Carry-forward** (needs a `delta` for the exact
    ///    `previous → new` transition): a cached carve transfers to the
    ///    new version bit-identically when the delta founded no cluster
    ///    (cluster count unchanged ⇒ the seeded sampling permutation
    ///    and the first-record entropy scorer are unchanged) and none
    ///    of the carve's *sampled* clusters was revised (rows only
    ///    append, so unrevised clusters reduce and rank identically).
    ///    Qualifying entries are re-keyed under the new version's
    ///    fingerprint — the same `Arc`, no re-render — which is what
    ///    keeps the warm-cache hit rate non-zero across low-churn
    ///    publishes. This bit-identity is property-tested against
    ///    fresh carves in `nc-stream`'s churn suite.
    /// 2. **Dead-version eviction**: entries tagged with a version no
    ///    longer in the registry (evicted by retention) are dropped
    ///    immediately instead of lingering until LRU pressure pushes
    ///    them out.
    ///
    /// Without a delta only step 2 runs: old-version entries stay
    /// correct (they serve pinned-version requests) but nothing can be
    /// carried forward.
    pub fn publish(
        &self,
        snapshot: crate::snapshot::ServeSnapshot,
        delta: Option<PublishDelta>,
    ) -> Arc<crate::snapshot::ServeSnapshot> {
        use std::sync::atomic::Ordering;
        let outcome = self.registry.publish_with_delta(snapshot, delta.clone());
        let new_version = outcome.snapshot.version();

        if let Some(delta) = delta {
            let transition_ok = delta.version == new_version
                && outcome.previous_version != new_version
                && delta.founded.is_empty();
            if transition_ok {
                for (tag, result) in self.cache.entries() {
                    if tag != u64::from(outcome.previous_version) {
                        continue;
                    }
                    let untouched = delta
                        .revised
                        .iter()
                        .all(|ncid| result.sampled.binary_search(ncid).is_err());
                    if untouched {
                        let key = fingerprint(new_version, &result.params);
                        self.cache.insert_tagged(key, u64::from(new_version), result);
                        self.carried_forward.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let live: std::collections::BTreeSet<u64> = self
            .registry
            .versions()
            .into_iter()
            .map(u64::from)
            .collect();
        let dropped = self.cache.retain(|tag, _| live.contains(&tag));
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        outcome.snapshot
    }

    /// Execute a carve request: resolve the snapshot, consult the cache,
    /// carve on a miss. Pagination is applied by the caller via
    /// [`CarveResult::page`] — the cache stores whole carves.
    pub fn carve(&self, request: &CarveRequest) -> Result<CarveOutcome, CarveError> {
        validate_params(&request.params)?;
        let snapshot = self
            .registry
            .pinned(request.version)
            .ok_or(CarveError::UnknownVersion(request.version.unwrap_or(0)))?;
        let version = snapshot.version();

        let key = fingerprint(version, &request.params);
        if let Some(result) = self.cache.get(&key) {
            return Ok(CarveOutcome {
                version,
                status: CacheStatus::Hit,
                result,
            });
        }

        let dataset = snapshot.carve(&request.params);
        let result = Arc::new(CarveResult::render(version, &request.params, &dataset));
        self.cache
            .insert_tagged(key, u64::from(version), Arc::clone(&result));
        Ok(CarveOutcome {
            version,
            status: CacheStatus::Miss,
            result,
        })
    }
}

/// Reject parameters that would panic or wedge the carve path.
fn validate_params(params: &CustomizeParams) -> Result<(), CarveError> {
    if !params.h_low.is_finite() || !params.h_high.is_finite() {
        return Err(CarveError::InvalidParams(
            "heterogeneity bounds must be finite".into(),
        ));
    }
    if params.h_low > params.h_high {
        return Err(CarveError::InvalidParams(format!(
            "h_low ({}) must not exceed h_high ({})",
            params.h_low, params.h_high
        )));
    }
    Ok(())
}

/// Canonical fingerprint of `(version, params)`.
///
/// Floats are rendered via `to_bits`, so two parameter sets collide iff
/// they are bit-identical — exactly the condition under which carving
/// returns the same dataset.
pub fn fingerprint(version: u32, params: &CustomizeParams) -> Digest {
    let canonical = format!(
        "nc-carve-v1|version={}|h_low={:016x}|h_high={:016x}|sample={}|output={}|seed={}",
        version,
        params.h_low.to_bits(),
        params.h_high.to_bits(),
        params.sample_clusters,
        params.output_clusters,
        params.seed,
    );
    md5(canonical.as_bytes())
}

/// Render a carved dataset as JSON lines: one object per record,
/// labeled with its gold-standard cluster index and NCID, with the
/// non-empty attributes in schema order. All emission is hand-rolled —
/// the serve crate must not depend on a JSON library.
pub fn render_lines(dataset: &CustomDataset) -> Vec<String> {
    let mut lines = Vec::with_capacity(dataset.record_count());
    for (cluster, cluster_data) in dataset.clusters.iter().enumerate() {
        for record in &cluster_data.records {
            lines.push(render_record(cluster, &cluster_data.ncid, record));
        }
    }
    lines
}

fn render_record(cluster: usize, ncid: &str, record: &Row) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"cluster\":");
    line.push_str(&cluster.to_string());
    line.push_str(",\"ncid\":\"");
    json_escape_into(&mut line, ncid);
    line.push_str("\",\"record\":{");
    let mut first = true;
    for (attr, value) in SCHEMA.iter().zip(&record.values) {
        if value.is_empty() {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        line.push('"');
        json_escape_into(&mut line, attr.name);
        line.push_str("\":\"");
        json_escape_into(&mut line, value);
        line.push('"');
    }
    line.push_str("}}");
    line
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Build a [`CarveRequest`] from decoded key/value pairs (query string
/// or form body). Recognized keys:
///
/// * `preset` — `nc1` | `nc2` | `nc3` (bounds from the paper);
/// * `h_low`, `h_high` — explicit bounds (override the preset's);
/// * `sample`, `output`, `seed` — sampling knobs;
/// * `version` — pin a published snapshot version;
/// * `page`, `page_size` — page window.
///
/// Unknown keys are rejected so that typos fail loudly instead of
/// silently carving the default dataset.
pub fn parse_carve_request(
    pairs: &[(String, String)],
    defaults: &RequestDefaults,
) -> Result<CarveRequest, CarveError> {
    let mut params = CustomizeParams::nc1(defaults.sample, defaults.output, defaults.seed);
    // Presets must apply before explicit bounds regardless of key order.
    for (key, value) in pairs {
        if key == "preset" {
            params = preset_params(value, defaults)?;
        }
    }

    let mut request = CarveRequest {
        version: None,
        params,
        page: 0,
        page_size: defaults.page_size,
    };

    for (key, value) in pairs {
        match key.as_str() {
            "preset" => {}
            "version" => request.version = Some(parse_num(key, value)?),
            "h_low" => request.params.h_low = parse_float(key, value)?,
            "h_high" => request.params.h_high = parse_float(key, value)?,
            "sample" => request.params.sample_clusters = parse_num(key, value)?,
            "output" => request.params.output_clusters = parse_num(key, value)?,
            "seed" => request.params.seed = parse_num(key, value)?,
            "page" => request.page = parse_num(key, value)?,
            "page_size" => request.page_size = parse_num(key, value)?,
            other => {
                return Err(CarveError::InvalidParams(format!(
                    "unknown parameter `{other}`"
                )))
            }
        }
    }

    if request.page_size == 0 || request.page_size > defaults.max_page_size {
        return Err(CarveError::InvalidParams(format!(
            "page_size must be in 1..={}",
            defaults.max_page_size
        )));
    }
    validate_params(&request.params)?;
    Ok(request)
}

/// Parameters for a named preset with the default sampling knobs.
pub fn preset_params(
    name: &str,
    defaults: &RequestDefaults,
) -> Result<CustomizeParams, CarveError> {
    match name {
        "nc1" => Ok(CustomizeParams::nc1(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        "nc2" => Ok(CustomizeParams::nc2(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        "nc3" => Ok(CustomizeParams::nc3(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        other => Err(CarveError::InvalidParams(format!(
            "unknown preset `{other}` (expected nc1, nc2 or nc3)"
        ))),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, CarveError> {
    value
        .parse()
        .map_err(|_| CarveError::InvalidParams(format!("`{key}` must be an integer, got `{value}`")))
}

fn parse_float(key: &str, value: &str) -> Result<f64, CarveError> {
    let parsed: f64 = value.parse().map_err(|_| {
        CarveError::InvalidParams(format!("`{key}` must be a number, got `{value}`"))
    })?;
    if !parsed.is_finite() {
        return Err(CarveError::InvalidParams(format!(
            "`{key}` must be finite, got `{value}`"
        )));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ServeSnapshot;
    use nc_core::cluster::ClusterStore;
    use nc_core::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, NCID};

    fn small_store() -> ClusterStore {
        let mut store = ClusterStore::new();
        for i in 0..8 {
            let mut r = Row::empty();
            r.set(NCID, format!("C{i}"));
            r.set(FIRST_NAME, "PAT");
            r.set(LAST_NAME, format!("SMITH{i}"));
            store.import_row(r, DedupPolicy::Trimmed, "s1", 1);
            // A second, slightly different record in even clusters.
            if i % 2 == 0 {
                let mut r = Row::empty();
                r.set(NCID, format!("C{i}"));
                r.set(FIRST_NAME, "PAT");
                r.set(LAST_NAME, format!("SMYTH{i}"));
                store.import_row(r, DedupPolicy::Trimmed, "s2", 1);
            }
        }
        store
    }

    fn engine(capacity: usize) -> CarveEngine {
        let registry = Arc::new(SnapshotRegistry::new(ServeSnapshot::capture(
            &small_store(),
            1,
        )));
        CarveEngine::new(registry, capacity)
    }

    fn request(seed: u64) -> CarveRequest {
        CarveRequest {
            version: None,
            params: CustomizeParams {
                h_low: 0.0,
                h_high: 1.0,
                sample_clusters: 8,
                output_clusters: 8,
                seed,
            },
            page: 0,
            page_size: 100,
        }
    }

    const DEFAULTS: RequestDefaults = RequestDefaults {
        sample: 100,
        output: 50,
        seed: 42,
        page_size: 25,
        max_page_size: 1000,
    };

    #[test]
    fn miss_then_hit_shares_the_same_result() {
        let engine = engine(4);
        let first = engine.carve(&request(7)).unwrap();
        assert_eq!(first.status, CacheStatus::Miss);
        let second = engine.carve(&request(7)).unwrap();
        assert_eq!(second.status, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn different_seeds_use_different_cache_entries() {
        let engine = engine(4);
        assert_eq!(engine.carve(&request(1)).unwrap().status, CacheStatus::Miss);
        assert_eq!(engine.carve(&request(2)).unwrap().status, CacheStatus::Miss);
        assert_eq!(engine.carve(&request(1)).unwrap().status, CacheStatus::Hit);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let engine = engine(4);
        let mut req = request(1);
        req.version = Some(99);
        assert_eq!(
            engine.carve(&req).unwrap_err(),
            CarveError::UnknownVersion(99)
        );
    }

    #[test]
    fn invalid_bounds_are_rejected_not_panicking() {
        let engine = engine(4);
        let mut req = request(1);
        req.params.h_low = 0.9;
        req.params.h_high = 0.1;
        assert!(matches!(
            engine.carve(&req),
            Err(CarveError::InvalidParams(_))
        ));
        req.params.h_low = f64::NAN;
        assert!(matches!(
            engine.carve(&req),
            Err(CarveError::InvalidParams(_))
        ));
    }

    /// The v1 store plus a revised copy where cluster C1 gained a row
    /// (no cluster founded).
    fn revised_store() -> ClusterStore {
        let mut store = small_store();
        let mut r = Row::empty();
        r.set(NCID, "C1");
        r.set(FIRST_NAME, "PATRICIA");
        r.set(LAST_NAME, "CHANGED");
        store.import_row(r, DedupPolicy::Trimmed, "s3", 2);
        store
    }

    fn revise_delta() -> PublishDelta {
        PublishDelta {
            version: 2,
            date: "s3".into(),
            founded: Vec::new(),
            revised: vec!["C1".into()],
        }
    }

    #[test]
    fn publish_carries_forward_unaffected_carves_bit_identically() {
        let engine = engine(32);
        // Carve with several small samples; split them by whether C1
        // (the cluster about to be revised) was sampled.
        let mut req = request(0);
        req.params.sample_clusters = 3;
        let mut touched = Vec::new();
        let mut untouched = Vec::new();
        for seed in 0..12 {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            if out.result.sampled.binary_search(&"C1".to_string()).is_ok() {
                touched.push(seed);
            } else {
                untouched.push(seed);
            }
        }
        assert!(!touched.is_empty() && !untouched.is_empty(), "need both kinds");

        let store2 = revised_store();
        engine.publish(ServeSnapshot::capture(&store2, 2), Some(revise_delta()));
        assert!(engine.delta_stats().carried_forward >= untouched.len() as u64);

        let fresh = ServeSnapshot::capture(&revised_store(), 2);
        for &seed in &untouched {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            assert_eq!(out.status, CacheStatus::Hit, "seed {seed} carried forward");
            assert_eq!(out.version, 2, "served as the new version");
            // The carried-forward lines are bit-identical to a fresh
            // carve at the new version.
            let fresh_lines = render_lines(&fresh.carve(&req.params));
            assert_eq!(out.result.lines, fresh_lines);
        }
        for &seed in &touched {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            assert_eq!(out.status, CacheStatus::Miss, "seed {seed} sampled C1");
        }
    }

    #[test]
    fn founding_a_cluster_blocks_all_carry_forward() {
        let engine = engine(32);
        let mut req = request(3);
        req.params.sample_clusters = 3;
        engine.carve(&req).unwrap();

        let mut store2 = revised_store();
        let mut r = Row::empty();
        r.set(NCID, "C99");
        r.set(FIRST_NAME, "NEW");
        r.set(LAST_NAME, "CLUSTER");
        store2.import_row(r, DedupPolicy::Trimmed, "s3", 2);
        let mut delta = revise_delta();
        delta.founded.push("C99".into());

        engine.publish(ServeSnapshot::capture(&store2, 2), Some(delta));
        assert_eq!(engine.delta_stats().carried_forward, 0);
        assert_eq!(engine.carve(&req).unwrap().status, CacheStatus::Miss);
    }

    #[test]
    fn publish_evicts_dead_version_entries_under_retention() {
        let registry = Arc::new(SnapshotRegistry::with_retention(
            ServeSnapshot::capture(&small_store(), 1),
            1,
        ));
        let engine = CarveEngine::new(registry, 8);
        engine.carve(&request(5)).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);

        // No delta: nothing carries forward; version 1 dies under the
        // retention limit and its entry is invalidated immediately.
        engine.publish(ServeSnapshot::capture(&revised_store(), 2), None);
        assert_eq!(engine.cache_stats().entries, 0);
        assert_eq!(engine.delta_stats().invalidated, 1);
        assert_eq!(
            engine.cache_stats().evictions,
            0,
            "invalidation is not a capacity eviction"
        );
    }

    #[test]
    fn fingerprint_distinguishes_bit_level_params() {
        let base = request(1).params;
        let mut other = base.clone();
        assert_eq!(fingerprint(1, &base), fingerprint(1, &other));
        other.h_high -= f64::EPSILON;
        assert_ne!(fingerprint(1, &base), fingerprint(1, &other));
        assert_ne!(fingerprint(1, &base), fingerprint(2, &base));
    }

    #[test]
    fn json_lines_are_labeled_and_escaped() {
        use nc_core::customize::CustomCluster;
        let mut r = Row::empty();
        r.set(NCID, "Q\"1");
        r.set(LAST_NAME, "O\\BRIEN\n");
        let ds = CustomDataset {
            clusters: vec![CustomCluster {
                ncid: "Q\"1".to_string(),
                records: vec![r],
            }],
            sampled: vec!["Q\"1".to_string()],
        };
        let lines = render_lines(&ds);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"cluster\":0,\"ncid\":\"Q\\\"1\""));
        assert!(lines[0].contains("\"last_name\":\"O\\\\BRIEN\\n\""));
        // Empty attributes are omitted.
        assert!(!lines[0].contains("first_name"));
    }

    #[test]
    fn pagination_slices_without_overlap() {
        let result = CarveResult {
            version: 1,
            params: request(1).params,
            sampled: Vec::new(),
            clusters: 1,
            records: 5,
            duplicate_pairs: 10,
            lines: (0..5).map(|i| format!("line{i}")).collect(),
        };
        assert_eq!(result.page(0, 2), ["line0", "line1"]);
        assert_eq!(result.page(1, 2), ["line2", "line3"]);
        assert_eq!(result.page(2, 2), ["line4"]);
        assert!(result.page(3, 2).is_empty());
        assert!(result.page(usize::MAX, usize::MAX).is_empty());
    }

    fn pairs(spec: &[(&str, &str)]) -> Vec<(String, String)> {
        spec.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_preset_then_overrides() {
        let req = parse_carve_request(
            &pairs(&[
                ("preset", "nc2"),
                ("seed", "9"),
                ("page", "3"),
                ("page_size", "10"),
            ]),
            &DEFAULTS,
        )
        .unwrap();
        assert_eq!(req.params.h_low, 0.2);
        assert_eq!(req.params.h_high, 0.4);
        assert_eq!(req.params.seed, 9);
        assert_eq!(req.params.sample_clusters, 100);
        assert_eq!(req.page, 3);
        assert_eq!(req.page_size, 10);
        assert_eq!(req.version, None);
    }

    #[test]
    fn preset_applies_before_explicit_bounds_regardless_of_order() {
        let req = parse_carve_request(
            &pairs(&[("h_high", "0.9"), ("preset", "nc1")]),
            &DEFAULTS,
        )
        .unwrap();
        assert_eq!(req.params.h_low, 0.06);
        assert_eq!(req.params.h_high, 0.9);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_carve_request(&pairs(&[("preset", "nc9")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("frobnicate", "1")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("seed", "abc")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("h_low", "inf")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("page_size", "0")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("page_size", "100000")]), &DEFAULTS).is_err());
        assert!(
            parse_carve_request(&pairs(&[("h_low", "0.5"), ("h_high", "0.1")]), &DEFAULTS)
                .is_err()
        );
    }

    #[test]
    fn defaults_produce_nc1_with_default_knobs() {
        let req = parse_carve_request(&[], &DEFAULTS).unwrap();
        assert_eq!(req.params, CustomizeParams::nc1(100, 50, 42));
        assert_eq!(req.page, 0);
        assert_eq!(req.page_size, 25);
    }
}
