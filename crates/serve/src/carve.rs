//! The carve engine: versioned carve requests, canonical parameter
//! fingerprints, and the cached execution path.
//!
//! A [`CarveRequest`] names a snapshot version (or "current"), the
//! customization parameters — explicit heterogeneity bounds or one of
//! the paper's `nc1`/`nc2`/`nc3` presets — an optional privacy
//! encoding (`encode=clk` renders CLK-encoded records via `nc-pprl`
//! instead of plaintext), and a page window over the resulting labeled
//! records. Because carving is a pure function of
//! `(version, params, encoding)`, the engine fingerprints that triple
//! via [`crate::fingerprint`] and consults a bounded LRU cache before
//! scanning clusters; pagination slices the cached result, so paging
//! through a large carve costs one carve total. Plaintext and encoded
//! carves of the same dataset never share a cache entry — the encoding
//! (key and geometry) is part of the fingerprint.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use nc_core::customize::{CustomDataset, CustomizeParams};
use nc_core::plausibility::PlausibilityScorer;
use nc_core::snapshot::StoreSnapshot;
use nc_docstore::value::Document;
use nc_query::{
    execute, plan_query, CarveQuery, ClusterCatalog, ExecOptions, Explain, QueryFootprint,
    QueryOutcome,
};
use nc_pprl::{render_encoded_record, EncodeScratch, EncodingParams, RecordEncoder};
use nc_votergen::schema::{Row, SCHEMA};

use crate::cache::{CacheStats, LruCache};
use crate::fingerprint::{knob_fingerprint, query_fingerprint};
use crate::snapshot::{PublishDelta, ServeSnapshot, SnapshotRegistry};

/// A request to carve one page of a customized dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CarveRequest {
    /// Snapshot version to pin, or `None` for the current one.
    pub version: Option<u32>,
    /// Customization parameters (bounds, sample/output sizes, seed).
    pub params: CustomizeParams,
    /// Privacy encoding: `Some` renders CLK-encoded records instead of
    /// plaintext, keyed separately in the cache.
    pub encoding: Option<EncodingParams>,
    /// Zero-based page index over the labeled records.
    pub page: usize,
    /// Records per page.
    pub page_size: usize,
}

/// Defaults used when a request names a preset or omits parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestDefaults {
    /// Default number of clusters to sample.
    pub sample: usize,
    /// Default number of output clusters.
    pub output: usize,
    /// Default sampling seed.
    pub seed: u64,
    /// Default page size.
    pub page_size: usize,
    /// Upper bound on the page size a client may request.
    pub max_page_size: usize,
}

/// Whether a carve was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache.
    Hit,
    /// Carved fresh and inserted into the cache.
    Miss,
}

impl CacheStatus {
    /// The value reported in the `X-Cache` response header.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// Why a carve request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CarveError {
    /// The requested snapshot version was never published.
    UnknownVersion(u32),
    /// The parameters are malformed (reason attached).
    InvalidParams(String),
}

impl fmt::Display for CarveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarveError::UnknownVersion(v) => write!(f, "unknown snapshot version {v}"),
            CarveError::InvalidParams(why) => write!(f, "invalid parameters: {why}"),
        }
    }
}

impl std::error::Error for CarveError {}

/// A fully carved dataset with its JSON lines pre-rendered, shared via
/// `Arc` between the cache and any number of concurrent responses.
#[derive(Debug)]
pub struct CarveResult {
    /// The snapshot version the carve was pinned to *when first
    /// computed*. A carried-forward cache entry keeps this original
    /// version — responses report the resolved version from
    /// [`CarveOutcome::version`], not from here.
    pub version: u32,
    /// The parameters the carve was computed with (needed to re-key a
    /// carried-forward entry under a new version's fingerprint).
    pub params: CustomizeParams,
    /// The privacy encoding the lines were rendered under (`None` =
    /// plaintext). Part of the cache key, so a carried-forward entry
    /// must re-key with it — encoded lines are a pure function of
    /// `(dataset, encoding)`, which keeps the carry-forward soundness
    /// argument unchanged.
    pub encoding: Option<EncodingParams>,
    /// NCIDs of every cluster the carve *sampled* (pre-ranking),
    /// sorted ascending for binary search. A publish delta whose
    /// revised set is disjoint from this makes the entry bit-identical
    /// at the new version (see [`CarveEngine::publish`]).
    pub sampled: Vec<String>,
    /// Number of clusters in the carved dataset.
    pub clusters: usize,
    /// Total number of labeled records (== `lines.len()`).
    pub records: usize,
    /// Duplicate pairs in the gold standard.
    pub duplicate_pairs: u64,
    /// One JSON object per labeled record, in dataset order.
    pub lines: Vec<String>,
    /// Set for carve-by-query results: the recorded query footprint the
    /// publish-time carry-forward check runs against. `None` for knob
    /// carves.
    pub query: Option<QueryCarve>,
}

/// What a cached query carve remembers about the query that produced
/// it, so a publish can decide soundly whether the entry survives.
#[derive(Debug)]
pub struct QueryCarve {
    /// The canonical query text (re-keys the entry under a new
    /// version's fingerprint on carry-forward).
    pub canonical: String,
    /// The predicate footprint: the conjunction of every `match` stage
    /// plus whether any stage reads the scorer-dependent `het` field.
    pub footprint: QueryFootprint,
    /// Whether the query pinned an explicit version. Pinned entries are
    /// never carried forward — the same request body keeps resolving to
    /// the pinned version, so a re-keyed entry could never be hit.
    pub pinned: bool,
}

impl CarveResult {
    /// Render a carved dataset into its response form: plaintext JSON
    /// lines, or CLK-encoded lines when an encoding is given.
    pub fn render(
        version: u32,
        params: &CustomizeParams,
        encoding: Option<&EncodingParams>,
        dataset: &CustomDataset,
    ) -> Self {
        let lines = match encoding {
            None => render_lines(dataset),
            Some(enc) => render_encoded_lines(dataset, enc),
        };
        let mut sampled = dataset.sampled.clone();
        sampled.sort_unstable();
        CarveResult {
            version,
            params: params.clone(),
            encoding: encoding.copied(),
            sampled,
            clusters: dataset.clusters.len(),
            records: lines.len(),
            duplicate_pairs: dataset.duplicate_pairs(),
            lines,
            query: None,
        }
    }

    /// Render an executed query carve into its response form. Cluster
    /// output becomes the same labeled JSON-lines format as knob carves
    /// (cluster index in output order, NCID, non-empty attributes);
    /// document output (project/group/count pipelines) becomes one
    /// canonical JSON object per line.
    ///
    /// # Panics
    /// When an encoding is given for a document-output pipeline — the
    /// engine rejects that combination with `InvalidParams` before
    /// rendering (projected documents would expose plaintext).
    pub fn render_query(
        version: u32,
        canonical: String,
        footprint: QueryFootprint,
        pinned: bool,
        encoding: Option<&EncodingParams>,
        outcome: &QueryOutcome,
        snapshot: &StoreSnapshot,
    ) -> Self {
        let all = snapshot.clusters();
        let (lines, clusters, duplicate_pairs) = match &outcome.positions {
            Some(positions) => {
                let encoder = encoding.map(|enc| RecordEncoder::new(*enc));
                let mut scratch = EncodeScratch::new();
                let mut lines = Vec::new();
                let mut pairs = 0u64;
                for (out_idx, &pos) in positions.iter().enumerate() {
                    let (ncid, rows) = &all[pos];
                    let n = rows.len() as u64;
                    pairs += n * n.saturating_sub(1) / 2;
                    match &encoder {
                        None => {
                            for record in rows {
                                lines.push(render_record(out_idx, ncid, record));
                            }
                        }
                        Some(encoder) => {
                            // Gold linkage comes from the cluster label,
                            // not from whatever the NCID column holds.
                            let token = encoder.ncid_token(ncid);
                            for record in rows {
                                let mut encoded = encoder.encode_row(record, &mut scratch);
                                encoded.ncid_token = token;
                                lines.push(render_encoded_record(out_idx, &encoded));
                            }
                        }
                    }
                }
                (lines, positions.len(), pairs)
            }
            None => {
                assert!(
                    encoding.is_none(),
                    "document-output pipelines cannot be encoded"
                );
                let lines: Vec<String> = outcome.docs.iter().map(Document::to_json).collect();
                (lines, 0, 0)
            }
        };
        CarveResult {
            version,
            // Knob parameters do not apply to a query carve; the cache
            // key comes from `query_fingerprint`, never from here.
            params: CustomizeParams::nc1(0, 0, 0),
            encoding: encoding.copied(),
            sampled: outcome.matched.clone(),
            clusters,
            records: lines.len(),
            duplicate_pairs,
            lines,
            query: Some(QueryCarve {
                canonical,
                footprint,
                pinned,
            }),
        }
    }

    /// The lines of one page (empty when the page is past the end).
    pub fn page(&self, page: usize, page_size: usize) -> &[String] {
        let start = page.saturating_mul(page_size).min(self.lines.len());
        let end = start.saturating_add(page_size).min(self.lines.len());
        &self.lines[start..end]
    }
}

/// The outcome of a successful carve.
#[derive(Debug)]
pub struct CarveOutcome {
    /// The version actually served (resolved from "current" if unpinned).
    pub version: u32,
    /// Whether the result came from the cache.
    pub status: CacheStatus,
    /// The shared carve result.
    pub result: Arc<CarveResult>,
}

/// Publish-time cache reconciliation counters, exported via `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Entries invalidated because their version died or their carve
    /// intersected a publish delta.
    pub invalidated: u64,
    /// Entries re-keyed to a new version because the publish delta
    /// provably did not affect them.
    pub carried_forward: u64,
}

/// Planner access-decision counters for the query path, exported via
/// `/metrics` (`nc_query_conjuncts_*_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Leading-match conjuncts answered from an index posting list.
    pub conjuncts_indexed: u64,
    /// Leading-match conjuncts that fell back to the residual scan.
    pub conjuncts_scanned: u64,
}

/// The carve engine: snapshot resolution + fingerprinted cache + carve.
#[derive(Debug)]
pub struct CarveEngine {
    registry: Arc<SnapshotRegistry>,
    cache: LruCache<CarveResult>,
    invalidated: std::sync::atomic::AtomicU64,
    carried_forward: std::sync::atomic::AtomicU64,
    conjuncts_indexed: std::sync::atomic::AtomicU64,
    conjuncts_scanned: std::sync::atomic::AtomicU64,
}

impl CarveEngine {
    /// Create an engine over a snapshot registry with a cache of
    /// `cache_capacity` carve results (0 disables caching).
    pub fn new(registry: Arc<SnapshotRegistry>, cache_capacity: usize) -> Self {
        CarveEngine {
            registry,
            cache: LruCache::new(cache_capacity),
            invalidated: std::sync::atomic::AtomicU64::new(0),
            carried_forward: std::sync::atomic::AtomicU64::new(0),
            conjuncts_indexed: std::sync::atomic::AtomicU64::new(0),
            conjuncts_scanned: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// Cache counters for `/metrics`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Publish-time reconciliation counters for `/metrics`.
    pub fn delta_stats(&self) -> DeltaStats {
        use std::sync::atomic::Ordering;
        DeltaStats {
            invalidated: self.invalidated.load(Ordering::Relaxed),
            carried_forward: self.carried_forward.load(Ordering::Relaxed),
        }
    }

    /// Planner access-decision counters for `/metrics`: how many
    /// leading-match conjuncts were answered from posting lists vs left
    /// for the residual scan, summed over every planned query (cold
    /// `POST /carve` and `POST /carve/explain`).
    pub fn query_stats(&self) -> QueryStats {
        use std::sync::atomic::Ordering;
        QueryStats {
            conjuncts_indexed: self.conjuncts_indexed.load(Ordering::Relaxed),
            conjuncts_scanned: self.conjuncts_scanned.load(Ordering::Relaxed),
        }
    }

    fn note_plan(&self, explain: &Explain) {
        use std::sync::atomic::Ordering;
        self.conjuncts_indexed
            .fetch_add(explain.indexed_conjuncts() as u64, Ordering::Relaxed);
        self.conjuncts_scanned
            .fetch_add(explain.scanned_conjuncts() as u64, Ordering::Relaxed);
    }

    /// Publish a snapshot through the registry and reconcile the carve
    /// cache against it.
    ///
    /// Two reconciliation steps run, in order:
    ///
    /// 1. **Carry-forward** (needs a `delta` for the exact
    ///    `previous → new` transition): a cached carve transfers to the
    ///    new version bit-identically when the delta founded no cluster
    ///    (cluster count unchanged ⇒ the seeded sampling permutation
    ///    and the first-record entropy scorer are unchanged) and none
    ///    of the carve's *sampled* clusters was revised (rows only
    ///    append, so unrevised clusters reduce and rank identically).
    ///    Qualifying entries are re-keyed under the new version's
    ///    fingerprint — the same `Arc`, no re-render — which is what
    ///    keeps the warm-cache hit rate non-zero across low-churn
    ///    publishes. This bit-identity is property-tested against
    ///    fresh carves in `nc-stream`'s churn suite.
    /// 2. **Dead-version eviction**: entries tagged with a version no
    ///    longer in the registry (evicted by retention) are dropped
    ///    immediately instead of lingering until LRU pressure pushes
    ///    them out.
    ///
    /// Without a delta only step 2 runs: old-version entries stay
    /// correct (they serve pinned-version requests) but nothing can be
    /// carried forward.
    pub fn publish(
        &self,
        snapshot: crate::snapshot::ServeSnapshot,
        delta: Option<PublishDelta>,
    ) -> Arc<crate::snapshot::ServeSnapshot> {
        use std::sync::atomic::Ordering;
        let outcome = self.registry.publish_with_delta(snapshot, delta.clone());
        let new_version = outcome.snapshot.version();

        if let Some(delta) = delta {
            let transition_ok =
                delta.version == new_version && outcome.previous_version != new_version;
            if transition_ok {
                let knob_ok = delta.founded.is_empty();
                // Catalog docs for the delta's dirty clusters, scored
                // under the *new* snapshot; computed at most once per
                // publish, and only when a query carve needs them.
                let mut dirty_docs: Option<Vec<Document>> = None;
                for (tag, result) in self.cache.entries() {
                    if tag != u64::from(outcome.previous_version) {
                        continue;
                    }
                    let revised_hits_sampled = delta
                        .revised
                        .iter()
                        .any(|ncid| result.sampled.binary_search(ncid).is_ok());
                    let carry = match &result.query {
                        // Knob carves are sound only when nothing was
                        // founded (founding changes the sampling
                        // permutation and the entropy weights) and no
                        // sampled cluster was revised.
                        None => knob_ok && !revised_hits_sampled,
                        // Query carves survive a founding publish too,
                        // provided (a) the query never reads `het`
                        // (whose entropy weights shift when a cluster
                        // is founded), (b) no cluster of the recorded
                        // matched set was revised, and (c) no dirty
                        // cluster matches the recorded predicate
                        // footprint under the new snapshot's scores —
                        // i.e. nothing could join the matched set.
                        Some(qc) => {
                            !qc.pinned
                                && (!qc.footprint.scorer_dependent || delta.founded.is_empty())
                                && !revised_hits_sampled
                                && !dirty_docs
                                    .get_or_insert_with(|| {
                                        dirty_cluster_docs(&outcome.snapshot, &delta)
                                    })
                                    .iter()
                                    .any(|doc| qc.footprint.matches(doc))
                        }
                    };
                    if carry {
                        let encoding = result.encoding.as_ref();
                        let key = match &result.query {
                            None => knob_fingerprint(new_version, &result.params, encoding),
                            Some(qc) => {
                                query_fingerprint(new_version, &qc.canonical, encoding)
                            }
                        };
                        self.cache.insert_tagged(key, u64::from(new_version), result);
                        self.carried_forward.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let live: std::collections::BTreeSet<u64> = self
            .registry
            .versions()
            .into_iter()
            .map(u64::from)
            .collect();
        let dropped = self.cache.retain(|tag, _| live.contains(&tag));
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        outcome.snapshot
    }

    /// Execute a carve request: resolve the snapshot, consult the cache,
    /// carve on a miss. Pagination is applied by the caller via
    /// [`CarveResult::page`] — the cache stores whole carves.
    pub fn carve(&self, request: &CarveRequest) -> Result<CarveOutcome, CarveError> {
        validate_params(&request.params)?;
        if let Some(enc) = &request.encoding {
            enc.validate().map_err(CarveError::InvalidParams)?;
        }
        let snapshot = self
            .registry
            .pinned(request.version)
            .ok_or(CarveError::UnknownVersion(request.version.unwrap_or(0)))?;
        let version = snapshot.version();

        let key = knob_fingerprint(version, &request.params, request.encoding.as_ref());
        if let Some(result) = self.cache.get(&key) {
            return Ok(CarveOutcome {
                version,
                status: CacheStatus::Hit,
                result,
            });
        }

        let dataset = snapshot.carve(&request.params);
        let result = Arc::new(CarveResult::render(
            version,
            &request.params,
            request.encoding.as_ref(),
            &dataset,
        ));
        self.cache
            .insert_tagged(key, u64::from(version), Arc::clone(&result));
        Ok(CarveOutcome {
            version,
            status: CacheStatus::Miss,
            result,
        })
    }

    /// Execute a carve-by-query request: resolve the snapshot, consult
    /// the cache under the query fingerprint, plan + execute on a miss.
    /// The cached entry records the query's predicate footprint and
    /// matched NCID set so [`CarveEngine::publish`] can carry it
    /// forward across deltas that provably cannot affect it.
    pub fn carve_query(&self, query: &CarveQuery) -> Result<CarveOutcome, CarveError> {
        self.carve_query_encoded(query, None)
    }

    /// [`CarveEngine::carve_query`] with an optional privacy encoding.
    /// Encoded query carves are keyed separately from plaintext ones
    /// and require a cluster-output pipeline: document output
    /// (project/group/count) is a plaintext projection, so requesting
    /// it encoded is `InvalidParams` and nothing is cached.
    pub fn carve_query_encoded(
        &self,
        query: &CarveQuery,
        encoding: Option<&EncodingParams>,
    ) -> Result<CarveOutcome, CarveError> {
        if let Some(enc) = encoding {
            enc.validate().map_err(CarveError::InvalidParams)?;
        }
        let snapshot = self
            .registry
            .pinned(query.version)
            .ok_or(CarveError::UnknownVersion(query.version.unwrap_or(0)))?;
        let version = snapshot.version();
        let canonical = query.canonical();

        let key = query_fingerprint(version, &canonical, encoding);
        if let Some(result) = self.cache.get(&key) {
            return Ok(CarveOutcome {
                version,
                status: CacheStatus::Hit,
                result,
            });
        }

        let outcome = execute(snapshot.catalog(), query, ExecOptions { force_scan: false });
        self.note_plan(&outcome.explain);
        if encoding.is_some() && outcome.positions.is_none() {
            return Err(CarveError::InvalidParams(
                "encoded carves require a cluster-output pipeline \
                 (document output would expose plaintext)"
                    .into(),
            ));
        }
        let result = Arc::new(CarveResult::render_query(
            version,
            canonical,
            query.footprint(),
            query.version.is_some(),
            encoding,
            &outcome,
            snapshot.store(),
        ));
        self.cache
            .insert_tagged(key, u64::from(version), Arc::clone(&result));
        Ok(CarveOutcome {
            version,
            status: CacheStatus::Miss,
            result,
        })
    }

    /// Plan a query without executing it (`POST /carve/explain`). Never
    /// cached — the report is cheap and callers want the plan for the
    /// catalog as it stands now.
    pub fn explain_query(&self, query: &CarveQuery) -> Result<Explain, CarveError> {
        let snapshot = self
            .registry
            .pinned(query.version)
            .ok_or(CarveError::UnknownVersion(query.version.unwrap_or(0)))?;
        let explain = plan_query(snapshot.catalog(), query, ExecOptions { force_scan: false });
        self.note_plan(&explain);
        Ok(explain)
    }
}

/// Catalog documents for every cluster named by `delta`, scored under
/// `snapshot` (the newly published version). One pass over the
/// snapshot's clusters; cost proportional to the store plus the delta,
/// not to the cache.
fn dirty_cluster_docs(snapshot: &ServeSnapshot, delta: &PublishDelta) -> Vec<Document> {
    let dirty: HashSet<&str> = delta.dirty_clusters().collect();
    if dirty.is_empty() {
        return Vec::new();
    }
    let plausibility = PlausibilityScorer::new();
    snapshot
        .store()
        .clusters()
        .iter()
        .filter(|(ncid, _)| dirty.contains(ncid.as_str()))
        .map(|(ncid, rows)| {
            ClusterCatalog::cluster_doc(ncid, rows, snapshot.scorer(), &plausibility)
        })
        .collect()
}

/// Reject parameters that would panic or wedge the carve path.
fn validate_params(params: &CustomizeParams) -> Result<(), CarveError> {
    if !params.h_low.is_finite() || !params.h_high.is_finite() {
        return Err(CarveError::InvalidParams(
            "heterogeneity bounds must be finite".into(),
        ));
    }
    if params.h_low > params.h_high {
        return Err(CarveError::InvalidParams(format!(
            "h_low ({}) must not exceed h_high ({})",
            params.h_low, params.h_high
        )));
    }
    Ok(())
}

/// Render a carved dataset as JSON lines: one object per record,
/// labeled with its gold-standard cluster index and NCID, with the
/// non-empty attributes in schema order. All emission is hand-rolled —
/// the serve crate must not depend on a JSON library.
pub fn render_lines(dataset: &CustomDataset) -> Vec<String> {
    let mut lines = Vec::with_capacity(dataset.record_count());
    for (cluster, cluster_data) in dataset.clusters.iter().enumerate() {
        for record in &cluster_data.records {
            lines.push(render_record(cluster, &cluster_data.ncid, record));
        }
    }
    lines
}

/// Render a carved dataset as CLK-encoded JSON lines: one object per
/// record with the gold cluster index, the keyed NCID token, the
/// record-level CLK and the per-field encodings — no plaintext
/// attribute ever appears. The caller validates the parameters first
/// (the encoder panics on invalid geometry).
pub fn render_encoded_lines(dataset: &CustomDataset, params: &EncodingParams) -> Vec<String> {
    let encoder = RecordEncoder::new(*params);
    let mut scratch = EncodeScratch::new();
    let mut lines = Vec::with_capacity(dataset.record_count());
    for (cluster, cluster_data) in dataset.clusters.iter().enumerate() {
        // Gold linkage comes from the cluster label, not from whatever
        // the NCID column holds.
        let token = encoder.ncid_token(&cluster_data.ncid);
        for record in &cluster_data.records {
            let mut encoded = encoder.encode_row(record, &mut scratch);
            encoded.ncid_token = token;
            lines.push(render_encoded_record(cluster, &encoded));
        }
    }
    lines
}

fn render_record(cluster: usize, ncid: &str, record: &Row) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"cluster\":");
    line.push_str(&cluster.to_string());
    line.push_str(",\"ncid\":\"");
    json_escape_into(&mut line, ncid);
    line.push_str("\",\"record\":{");
    let mut first = true;
    for (attr, value) in SCHEMA.iter().zip(&record.values) {
        if value.is_empty() {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        line.push('"');
        json_escape_into(&mut line, attr.name);
        line.push_str("\":\"");
        json_escape_into(&mut line, value);
        line.push('"');
    }
    line.push_str("}}");
    line
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Build a [`CarveRequest`] from decoded key/value pairs (query string
/// or form body). Recognized keys:
///
/// * `preset` — `nc1` | `nc2` | `nc3` (bounds from the paper);
/// * `h_low`, `h_high` — explicit bounds (override the preset's);
/// * `sample`, `output`, `seed` — sampling knobs;
/// * `version` — pin a published snapshot version;
/// * `page`, `page_size` — page window;
/// * `encode`, `encode_key`, `encode_bits`, `encode_hashes`,
///   `encode_q` — privacy encoding (see [`parse_encoding_params`]).
///
/// Unknown keys are rejected so that typos fail loudly instead of
/// silently carving the default dataset.
pub fn parse_carve_request(
    pairs: &[(String, String)],
    defaults: &RequestDefaults,
) -> Result<CarveRequest, CarveError> {
    let (encode_pairs, knob_pairs): (Vec<_>, Vec<_>) = pairs
        .iter()
        .cloned()
        .partition(|(key, _)| key == "encode" || key.starts_with("encode_"));
    let encoding = parse_encoding_params(&encode_pairs)?;
    let pairs = &knob_pairs;

    let mut params = CustomizeParams::nc1(defaults.sample, defaults.output, defaults.seed);
    // Presets must apply before explicit bounds regardless of key order.
    for (key, value) in pairs {
        if key == "preset" {
            params = preset_params(value, defaults)?;
        }
    }

    let mut request = CarveRequest {
        version: None,
        params,
        encoding,
        page: 0,
        page_size: defaults.page_size,
    };

    for (key, value) in pairs {
        match key.as_str() {
            "preset" => {}
            "version" => request.version = Some(parse_num(key, value)?),
            "h_low" => request.params.h_low = parse_float(key, value)?,
            "h_high" => request.params.h_high = parse_float(key, value)?,
            "sample" => request.params.sample_clusters = parse_num(key, value)?,
            "output" => request.params.output_clusters = parse_num(key, value)?,
            "seed" => request.params.seed = parse_num(key, value)?,
            "page" => request.page = parse_num(key, value)?,
            "page_size" => request.page_size = parse_num(key, value)?,
            other => {
                return Err(CarveError::InvalidParams(format!(
                    "unknown parameter `{other}`"
                )))
            }
        }
    }

    if request.page_size == 0 || request.page_size > defaults.max_page_size {
        return Err(CarveError::InvalidParams(format!(
            "page_size must be in 1..={}",
            defaults.max_page_size
        )));
    }
    validate_params(&request.params)?;
    Ok(request)
}

/// Parse the privacy-encoding keys shared by knob carves (form body or
/// query string) and query carves (query string only):
///
/// * `encode=clk` — request CLK-encoded output with the default
///   parameters;
/// * `encode_key` — the linkage key (decimal u64);
/// * `encode_bits`, `encode_hashes`, `encode_q` — CLK geometry.
///
/// The `encode_*` knobs require `encode=clk` (in any key order), and
/// the assembled parameters are validated before use. Any other key is
/// rejected — callers pass only the pairs they have not already
/// consumed.
pub fn parse_encoding_params(
    pairs: &[(String, String)],
) -> Result<Option<EncodingParams>, CarveError> {
    let mut encoding: Option<EncodingParams> = None;
    // `encode` must apply before the knobs regardless of key order.
    for (key, value) in pairs {
        if key == "encode" {
            match value.as_str() {
                "clk" => encoding = Some(EncodingParams::default()),
                other => {
                    return Err(CarveError::InvalidParams(format!(
                        "unknown encoding `{other}` (expected `clk`)"
                    )))
                }
            }
        }
    }
    for (key, value) in pairs {
        match key.as_str() {
            "encode" => {}
            "encode_key" => require_encode(&mut encoding, key)?.key = parse_num(key, value)?,
            "encode_bits" => require_encode(&mut encoding, key)?.bits = parse_num(key, value)?,
            "encode_hashes" => {
                require_encode(&mut encoding, key)?.hashes = parse_num(key, value)?
            }
            "encode_q" => require_encode(&mut encoding, key)?.q = parse_num(key, value)?,
            other => {
                return Err(CarveError::InvalidParams(format!(
                    "unknown parameter `{other}`"
                )))
            }
        }
    }
    if let Some(enc) = &encoding {
        enc.validate().map_err(CarveError::InvalidParams)?;
    }
    Ok(encoding)
}

fn require_encode<'a>(
    encoding: &'a mut Option<EncodingParams>,
    key: &str,
) -> Result<&'a mut EncodingParams, CarveError> {
    encoding
        .as_mut()
        .ok_or_else(|| CarveError::InvalidParams(format!("`{key}` requires `encode=clk`")))
}

/// Parameters for a named preset with the default sampling knobs.
pub fn preset_params(
    name: &str,
    defaults: &RequestDefaults,
) -> Result<CustomizeParams, CarveError> {
    match name {
        "nc1" => Ok(CustomizeParams::nc1(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        "nc2" => Ok(CustomizeParams::nc2(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        "nc3" => Ok(CustomizeParams::nc3(
            defaults.sample,
            defaults.output,
            defaults.seed,
        )),
        other => Err(CarveError::InvalidParams(format!(
            "unknown preset `{other}` (expected nc1, nc2 or nc3)"
        ))),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, CarveError> {
    value
        .parse()
        .map_err(|_| CarveError::InvalidParams(format!("`{key}` must be an integer, got `{value}`")))
}

fn parse_float(key: &str, value: &str) -> Result<f64, CarveError> {
    let parsed: f64 = value.parse().map_err(|_| {
        CarveError::InvalidParams(format!("`{key}` must be a number, got `{value}`"))
    })?;
    if !parsed.is_finite() {
        return Err(CarveError::InvalidParams(format!(
            "`{key}` must be finite, got `{value}`"
        )));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ServeSnapshot;
    use nc_core::cluster::ClusterStore;
    use nc_core::record::DedupPolicy;
    use nc_votergen::schema::{FIRST_NAME, LAST_NAME, NCID};

    fn small_store() -> ClusterStore {
        let mut store = ClusterStore::new();
        for i in 0..8 {
            let mut r = Row::empty();
            r.set(NCID, format!("C{i}"));
            r.set(FIRST_NAME, "PAT");
            r.set(LAST_NAME, format!("SMITH{i}"));
            store.import_row(r, DedupPolicy::Trimmed, "s1", 1);
            // A second, slightly different record in even clusters.
            if i % 2 == 0 {
                let mut r = Row::empty();
                r.set(NCID, format!("C{i}"));
                r.set(FIRST_NAME, "PAT");
                r.set(LAST_NAME, format!("SMYTH{i}"));
                store.import_row(r, DedupPolicy::Trimmed, "s2", 1);
            }
        }
        store
    }

    fn engine(capacity: usize) -> CarveEngine {
        let registry = Arc::new(SnapshotRegistry::new(ServeSnapshot::capture(
            &small_store(),
            1,
        )));
        CarveEngine::new(registry, capacity)
    }

    fn request(seed: u64) -> CarveRequest {
        CarveRequest {
            version: None,
            params: CustomizeParams {
                h_low: 0.0,
                h_high: 1.0,
                sample_clusters: 8,
                output_clusters: 8,
                seed,
            },
            encoding: None,
            page: 0,
            page_size: 100,
        }
    }

    const DEFAULTS: RequestDefaults = RequestDefaults {
        sample: 100,
        output: 50,
        seed: 42,
        page_size: 25,
        max_page_size: 1000,
    };

    #[test]
    fn miss_then_hit_shares_the_same_result() {
        let engine = engine(4);
        let first = engine.carve(&request(7)).unwrap();
        assert_eq!(first.status, CacheStatus::Miss);
        let second = engine.carve(&request(7)).unwrap();
        assert_eq!(second.status, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn different_seeds_use_different_cache_entries() {
        let engine = engine(4);
        assert_eq!(engine.carve(&request(1)).unwrap().status, CacheStatus::Miss);
        assert_eq!(engine.carve(&request(2)).unwrap().status, CacheStatus::Miss);
        assert_eq!(engine.carve(&request(1)).unwrap().status, CacheStatus::Hit);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let engine = engine(4);
        let mut req = request(1);
        req.version = Some(99);
        assert_eq!(
            engine.carve(&req).unwrap_err(),
            CarveError::UnknownVersion(99)
        );
    }

    #[test]
    fn invalid_bounds_are_rejected_not_panicking() {
        let engine = engine(4);
        let mut req = request(1);
        req.params.h_low = 0.9;
        req.params.h_high = 0.1;
        assert!(matches!(
            engine.carve(&req),
            Err(CarveError::InvalidParams(_))
        ));
        req.params.h_low = f64::NAN;
        assert!(matches!(
            engine.carve(&req),
            Err(CarveError::InvalidParams(_))
        ));
    }

    /// The v1 store plus a revised copy where cluster C1 gained a row
    /// (no cluster founded).
    fn revised_store() -> ClusterStore {
        let mut store = small_store();
        let mut r = Row::empty();
        r.set(NCID, "C1");
        r.set(FIRST_NAME, "PATRICIA");
        r.set(LAST_NAME, "CHANGED");
        store.import_row(r, DedupPolicy::Trimmed, "s3", 2);
        store
    }

    fn revise_delta() -> PublishDelta {
        PublishDelta {
            version: 2,
            date: "s3".into(),
            founded: Vec::new(),
            revised: vec!["C1".into()],
        }
    }

    #[test]
    fn publish_carries_forward_unaffected_carves_bit_identically() {
        let engine = engine(32);
        // Carve with several small samples; split them by whether C1
        // (the cluster about to be revised) was sampled.
        let mut req = request(0);
        req.params.sample_clusters = 3;
        let mut touched = Vec::new();
        let mut untouched = Vec::new();
        for seed in 0..12 {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            if out.result.sampled.binary_search(&"C1".to_string()).is_ok() {
                touched.push(seed);
            } else {
                untouched.push(seed);
            }
        }
        assert!(!touched.is_empty() && !untouched.is_empty(), "need both kinds");

        let store2 = revised_store();
        engine.publish(ServeSnapshot::capture(&store2, 2), Some(revise_delta()));
        assert!(engine.delta_stats().carried_forward >= untouched.len() as u64);

        let fresh = ServeSnapshot::capture(&revised_store(), 2);
        for &seed in &untouched {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            assert_eq!(out.status, CacheStatus::Hit, "seed {seed} carried forward");
            assert_eq!(out.version, 2, "served as the new version");
            // The carried-forward lines are bit-identical to a fresh
            // carve at the new version.
            let fresh_lines = render_lines(&fresh.carve(&req.params));
            assert_eq!(out.result.lines, fresh_lines);
        }
        for &seed in &touched {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            assert_eq!(out.status, CacheStatus::Miss, "seed {seed} sampled C1");
        }
    }

    #[test]
    fn founding_a_cluster_blocks_all_carry_forward() {
        let engine = engine(32);
        let mut req = request(3);
        req.params.sample_clusters = 3;
        engine.carve(&req).unwrap();

        let mut store2 = revised_store();
        let mut r = Row::empty();
        r.set(NCID, "C99");
        r.set(FIRST_NAME, "NEW");
        r.set(LAST_NAME, "CLUSTER");
        store2.import_row(r, DedupPolicy::Trimmed, "s3", 2);
        let mut delta = revise_delta();
        delta.founded.push("C99".into());

        engine.publish(ServeSnapshot::capture(&store2, 2), Some(delta));
        assert_eq!(engine.delta_stats().carried_forward, 0);
        assert_eq!(engine.carve(&req).unwrap().status, CacheStatus::Miss);
    }

    #[test]
    fn publish_evicts_dead_version_entries_under_retention() {
        let registry = Arc::new(SnapshotRegistry::with_retention(
            ServeSnapshot::capture(&small_store(), 1),
            1,
        ));
        let engine = CarveEngine::new(registry, 8);
        engine.carve(&request(5)).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);

        // No delta: nothing carries forward; version 1 dies under the
        // retention limit and its entry is invalidated immediately.
        engine.publish(ServeSnapshot::capture(&revised_store(), 2), None);
        assert_eq!(engine.cache_stats().entries, 0);
        assert_eq!(engine.delta_stats().invalidated, 1);
        assert_eq!(
            engine.cache_stats().evictions,
            0,
            "invalidation is not a capacity eviction"
        );
    }

    #[test]
    fn fingerprint_distinguishes_bit_level_params() {
        let base = request(1).params;
        let mut other = base.clone();
        assert_eq!(
            knob_fingerprint(1, &base, None),
            knob_fingerprint(1, &other, None)
        );
        other.h_high -= f64::EPSILON;
        assert_ne!(
            knob_fingerprint(1, &base, None),
            knob_fingerprint(1, &other, None)
        );
        assert_ne!(
            knob_fingerprint(1, &base, None),
            knob_fingerprint(2, &base, None)
        );
    }

    #[test]
    fn json_lines_are_labeled_and_escaped() {
        use nc_core::customize::CustomCluster;
        let mut r = Row::empty();
        r.set(NCID, "Q\"1");
        r.set(LAST_NAME, "O\\BRIEN\n");
        let ds = CustomDataset {
            clusters: vec![CustomCluster {
                ncid: "Q\"1".to_string(),
                records: vec![r],
            }],
            sampled: vec!["Q\"1".to_string()],
        };
        let lines = render_lines(&ds);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"cluster\":0,\"ncid\":\"Q\\\"1\""));
        assert!(lines[0].contains("\"last_name\":\"O\\\\BRIEN\\n\""));
        // Empty attributes are omitted.
        assert!(!lines[0].contains("first_name"));
    }

    #[test]
    fn pagination_slices_without_overlap() {
        let result = CarveResult {
            version: 1,
            params: request(1).params,
            encoding: None,
            sampled: Vec::new(),
            clusters: 1,
            records: 5,
            duplicate_pairs: 10,
            lines: (0..5).map(|i| format!("line{i}")).collect(),
            query: None,
        };
        assert_eq!(result.page(0, 2), ["line0", "line1"]);
        assert_eq!(result.page(1, 2), ["line2", "line3"]);
        assert_eq!(result.page(2, 2), ["line4"]);
        assert!(result.page(3, 2).is_empty());
        assert!(result.page(usize::MAX, usize::MAX).is_empty());
    }

    fn pairs(spec: &[(&str, &str)]) -> Vec<(String, String)> {
        spec.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_preset_then_overrides() {
        let req = parse_carve_request(
            &pairs(&[
                ("preset", "nc2"),
                ("seed", "9"),
                ("page", "3"),
                ("page_size", "10"),
            ]),
            &DEFAULTS,
        )
        .unwrap();
        assert_eq!(req.params.h_low, 0.2);
        assert_eq!(req.params.h_high, 0.4);
        assert_eq!(req.params.seed, 9);
        assert_eq!(req.params.sample_clusters, 100);
        assert_eq!(req.page, 3);
        assert_eq!(req.page_size, 10);
        assert_eq!(req.version, None);
    }

    #[test]
    fn preset_applies_before_explicit_bounds_regardless_of_order() {
        let req = parse_carve_request(
            &pairs(&[("h_high", "0.9"), ("preset", "nc1")]),
            &DEFAULTS,
        )
        .unwrap();
        assert_eq!(req.params.h_low, 0.06);
        assert_eq!(req.params.h_high, 0.9);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_carve_request(&pairs(&[("preset", "nc9")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("frobnicate", "1")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("seed", "abc")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("h_low", "inf")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("page_size", "0")]), &DEFAULTS).is_err());
        assert!(parse_carve_request(&pairs(&[("page_size", "100000")]), &DEFAULTS).is_err());
        assert!(
            parse_carve_request(&pairs(&[("h_low", "0.5"), ("h_high", "0.1")]), &DEFAULTS)
                .is_err()
        );
    }

    fn query(body: &str) -> CarveQuery {
        CarveQuery::parse(body.as_bytes()).expect("test query parses")
    }

    #[test]
    fn query_carve_miss_then_hit_replays_bit_identically() {
        let engine = engine(8);
        let q = query(r#"{"pipeline": [{"match": {"size": {"gte": 2}}}]}"#);
        let first = engine.carve_query(&q).unwrap();
        assert_eq!(first.status, CacheStatus::Miss);
        assert!(!first.result.lines.is_empty());
        // Even clusters have two records; the matched set is recorded.
        assert_eq!(
            first.result.sampled,
            vec!["C0", "C2", "C4", "C6"]
        );
        assert_eq!(first.result.clusters, 4);
        // Each 2-record cluster contributes one duplicate pair.
        assert_eq!(first.result.duplicate_pairs, 4);

        let second = engine.carve_query(&q).unwrap();
        assert_eq!(second.status, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&first.result, &second.result));

        // The same pipeline written with different key order and
        // whitespace lands on the same fingerprint.
        let reordered = query(r#"{ "pipeline":[ {"match":{"size":{"gte":2}}} ] }"#);
        assert_eq!(engine.carve_query(&reordered).unwrap().status, CacheStatus::Hit);
    }

    #[test]
    fn query_carve_survives_disjoint_publish() {
        let engine = engine(8);
        let q = query(r#"{"pipeline": [{"match": {"ncid": {"eq": "C3"}}}]}"#);
        let first = engine.carve_query(&q).unwrap();
        assert_eq!(first.status, CacheStatus::Miss);

        // Revises C1 only; C1 is not in the matched set and its new
        // catalog doc does not match `ncid == C3`.
        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));
        assert_eq!(engine.delta_stats().carried_forward, 1);

        let after = engine.carve_query(&q).unwrap();
        assert_eq!(after.status, CacheStatus::Hit, "carried forward across the delta");
        assert_eq!(after.version, 2);
        assert_eq!(after.result.lines, first.result.lines, "bit-identical replay");
    }

    #[test]
    fn query_carve_invalidated_when_dirty_cluster_matches_footprint() {
        let engine = engine(8);
        // C1 has one record at v1, so it is outside the matched set —
        // but the revision grows it to size 2, which matches.
        let q = query(r#"{"pipeline": [{"match": {"size": {"gte": 2}}}]}"#);
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Miss);

        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));
        assert_eq!(engine.delta_stats().carried_forward, 0);
        let after = engine.carve_query(&q).unwrap();
        assert_eq!(after.status, CacheStatus::Miss, "C1 joined the matched set");
        assert!(after
            .result
            .sampled
            .binary_search(&"C1".to_string())
            .is_ok());
    }

    #[test]
    fn scorer_dependent_query_blocked_by_founding_only() {
        let engine = engine(8);
        // Matches nothing, but reads `het` — entropy weights change
        // whenever a cluster is founded.
        let q = query(r#"{"pipeline": [{"match": {"het": {"lt": -1.0}}}]}"#);
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Miss);

        // A revise-only delta leaves the weights alone: carried forward.
        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Hit);

        // A founding delta shifts them: invalidated.
        let mut store3 = revised_store();
        let mut r = Row::empty();
        r.set(NCID, "C99");
        r.set(FIRST_NAME, "NEW");
        r.set(LAST_NAME, "CLUSTER");
        store3.import_row(r, DedupPolicy::Trimmed, "s4", 3);
        let delta = PublishDelta {
            version: 3,
            date: "s4".into(),
            founded: vec!["C99".into()],
            revised: Vec::new(),
        };
        engine.publish(ServeSnapshot::capture(&store3, 3), Some(delta));
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Miss);
    }

    #[test]
    fn transform_match_query_invalidated_on_any_revision() {
        let engine = engine(8);
        // The match runs over the group's output (`n` is an accumulator
        // field, absent from catalog docs); the footprint must degrade
        // to match-everything so any revision invalidates the entry —
        // revising C1 changes the size-2 group count from 4 to 5.
        let q = query(
            r#"{"pipeline": [
                {"group": {"by": "size", "agg": {"n": "count"}}},
                {"match": {"n": {"gte": 5}}}
            ]}"#,
        );
        let first = engine.carve_query(&q).unwrap();
        assert_eq!(first.status, CacheStatus::Miss);
        assert!(first.result.lines.is_empty(), "no group reaches 5 at v1");
        // The recorded matched set is the full snapshot, not empty.
        assert_eq!(first.result.sampled.len(), 8);

        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));
        assert_eq!(engine.delta_stats().carried_forward, 0);
        let after = engine.carve_query(&q).unwrap();
        assert_eq!(after.status, CacheStatus::Miss, "stale entry must not survive");
        assert_eq!(
            after.result.lines,
            vec![r#"{"_key":2,"n":5}"#.to_string()],
            "fresh carve sees the revised counts"
        );
    }

    #[test]
    fn pinned_query_stays_at_its_version_across_publishes() {
        let engine = engine(8);
        let q = query(r#"{"version": 1, "pipeline": [{"match": {"ncid": {"eq": "C3"}}}]}"#);
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Miss);
        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));
        let after = engine.carve_query(&q).unwrap();
        assert_eq!(after.status, CacheStatus::Hit, "version-1 entry still serves");
        assert_eq!(after.version, 1);
    }

    #[test]
    fn query_carve_docs_output_renders_json_objects() {
        let engine = engine(8);
        let q = query(
            r#"{"pipeline": [
                {"match": {"size": {"gte": 2}}},
                {"group": {"by": "size", "agg": {"n": "count"}}}
            ]}"#,
        );
        let out = engine.carve_query(&q).unwrap();
        assert_eq!(out.result.clusters, 0, "document output carries no clusters");
        assert_eq!(out.result.lines, vec![r#"{"_key":2,"n":4}"#.to_string()]);
    }

    #[test]
    fn explain_and_carve_feed_the_conjunct_counters() {
        let engine = engine(8);
        // `size` rides its ordered index; `errors.total` is unindexed.
        let q = query(
            r#"{"pipeline": [{"match": {"size": {"gte": 2}, "errors.total": {"gte": 0}}}]}"#,
        );
        let explain = engine.explain_query(&q).unwrap();
        assert!(!explain.full_scan, "indexed conjunct prevents the full scan");
        assert_eq!(explain.indexed_conjuncts(), 1);
        assert_eq!(explain.scanned_conjuncts(), 1);
        let stats = engine.query_stats();
        assert_eq!(stats.conjuncts_indexed, 1);
        assert_eq!(stats.conjuncts_scanned, 1);

        engine.carve_query(&q).unwrap();
        let stats = engine.query_stats();
        assert_eq!(stats.conjuncts_indexed, 2);
        assert_eq!(stats.conjuncts_scanned, 2);

        let unknown = query(r#"{"version": 9, "pipeline": [{"limit": 1}]}"#);
        assert_eq!(
            engine.explain_query(&unknown).unwrap_err(),
            CarveError::UnknownVersion(9)
        );
    }

    #[test]
    fn defaults_produce_nc1_with_default_knobs() {
        let req = parse_carve_request(&[], &DEFAULTS).unwrap();
        assert_eq!(req.params, CustomizeParams::nc1(100, 50, 42));
        assert_eq!(req.encoding, None);
        assert_eq!(req.page, 0);
        assert_eq!(req.page_size, 25);
    }

    #[test]
    fn parse_encoding_knobs_in_any_order() {
        let req = parse_carve_request(
            &pairs(&[
                ("encode_bits", "512"),
                ("encode", "clk"),
                ("encode_key", "7"),
                ("seed", "9"),
            ]),
            &DEFAULTS,
        )
        .unwrap();
        let enc = req.encoding.unwrap();
        assert_eq!(enc.key, 7);
        assert_eq!(enc.bits, 512);
        assert_eq!(enc.hashes, EncodingParams::default().hashes);
        assert_eq!(req.params.seed, 9);
    }

    #[test]
    fn parse_rejects_bad_encoding_input() {
        // Knobs without `encode=clk` fail loudly.
        assert!(parse_carve_request(&pairs(&[("encode_key", "7")]), &DEFAULTS).is_err());
        // Unknown encoding name.
        assert!(parse_carve_request(&pairs(&[("encode", "rot13")]), &DEFAULTS).is_err());
        // Invalid geometry is rejected at parse time.
        assert!(parse_carve_request(
            &pairs(&[("encode", "clk"), ("encode_bits", "100")]),
            &DEFAULTS
        )
        .is_err());
        // Typo'd encode_* key.
        assert!(parse_carve_request(
            &pairs(&[("encode", "clk"), ("encode_qq", "2")]),
            &DEFAULTS
        )
        .is_err());
    }

    fn encoded_request(seed: u64, key: u64) -> CarveRequest {
        let mut req = request(seed);
        req.encoding = Some(EncodingParams {
            key,
            ..Default::default()
        });
        req
    }

    #[test]
    fn encoded_and_plaintext_carves_never_share_a_cache_entry() {
        let engine = engine(8);
        let plain = engine.carve(&request(7)).unwrap();
        assert_eq!(plain.status, CacheStatus::Miss);
        // Same (version, params): the encoding must still miss.
        let encoded = engine.carve(&encoded_request(7, 0)).unwrap();
        assert_eq!(encoded.status, CacheStatus::Miss);
        assert!(!Arc::ptr_eq(&plain.result, &encoded.result));
        // A different key is yet another entry.
        assert_eq!(
            engine.carve(&encoded_request(7, 99)).unwrap().status,
            CacheStatus::Miss
        );
        // Each replays from its own entry.
        assert_eq!(engine.carve(&request(7)).unwrap().status, CacheStatus::Hit);
        assert_eq!(
            engine.carve(&encoded_request(7, 0)).unwrap().status,
            CacheStatus::Hit
        );
    }

    #[test]
    fn encoded_lines_carry_labels_but_no_plaintext() {
        let engine = engine(8);
        let out = engine.carve(&encoded_request(3, 5)).unwrap();
        assert_eq!(out.result.records, out.result.lines.len());
        assert!(!out.result.lines.is_empty());
        for line in &out.result.lines {
            assert!(line.starts_with("{\"cluster\":"));
            assert!(line.contains("\"record_clk\":\""));
            // Store values (names, NCIDs) must never appear.
            assert!(!line.contains("SMITH") && !line.contains("PAT"));
            assert!(!line.contains("\"ncid\":"));
        }
        // Records of one cluster share their NCID token; bit-identical
        // replay on the cache hit.
        let replay = engine.carve(&encoded_request(3, 5)).unwrap();
        assert_eq!(replay.result.lines, out.result.lines);
    }

    #[test]
    fn encoded_carves_carry_forward_under_their_own_key() {
        let engine = engine(32);
        let mut req = encoded_request(0, 9);
        req.params.sample_clusters = 3;
        let mut untouched = None;
        for seed in 0..12 {
            req.params.seed = seed;
            let out = engine.carve(&req).unwrap();
            if out.result.sampled.binary_search(&"C1".to_string()).is_err() {
                untouched = Some(seed);
                break;
            }
        }
        let seed = untouched.expect("some small sample avoids C1");

        engine.publish(ServeSnapshot::capture(&revised_store(), 2), Some(revise_delta()));

        req.params.seed = seed;
        let carried = engine.carve(&req).unwrap();
        assert_eq!(carried.status, CacheStatus::Hit, "encoded entry re-keyed");
        assert_eq!(carried.version, 2);
        // The carried-forward encoded lines equal a fresh encode of the
        // new version's carve.
        let fresh = ServeSnapshot::capture(&revised_store(), 2);
        let fresh_lines =
            render_encoded_lines(&fresh.carve(&req.params), req.encoding.as_ref().unwrap());
        assert_eq!(carried.result.lines, fresh_lines);
        // The plaintext twin was never cached: still a miss.
        let mut plain = req.clone();
        plain.encoding = None;
        assert_eq!(engine.carve(&plain).unwrap().status, CacheStatus::Miss);
    }

    #[test]
    fn encoded_query_carve_keys_and_renders_separately() {
        let engine = engine(8);
        let q = query(r#"{"pipeline": [{"match": {"size": {"gte": 2}}}]}"#);
        let enc = EncodingParams::default();
        let plain = engine.carve_query(&q).unwrap();
        let encoded = engine.carve_query_encoded(&q, Some(&enc)).unwrap();
        assert_eq!(encoded.status, CacheStatus::Miss, "not the plaintext entry");
        assert_eq!(encoded.result.records, plain.result.records);
        assert_eq!(encoded.result.clusters, plain.result.clusters);
        assert!(encoded.result.lines[0].contains("\"record_clk\":\""));
        assert!(!encoded.result.lines[0].contains("SMITH"));
        // Both replay from their own entries.
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Hit);
        assert_eq!(
            engine.carve_query_encoded(&q, Some(&enc)).unwrap().status,
            CacheStatus::Hit
        );
    }

    #[test]
    fn encoded_query_carve_rejects_document_output() {
        let engine = engine(8);
        let q = query(
            r#"{"pipeline": [{"group": {"by": "size", "agg": {"n": "count"}}}]}"#,
        );
        let enc = EncodingParams::default();
        assert!(matches!(
            engine.carve_query_encoded(&q, Some(&enc)),
            Err(CarveError::InvalidParams(_))
        ));
        // Nothing was cached under the encoded key.
        assert!(matches!(
            engine.carve_query_encoded(&q, Some(&enc)),
            Err(CarveError::InvalidParams(_))
        ));
        assert_eq!(engine.cache_stats().entries, 0);
        // The plaintext form still works.
        assert_eq!(engine.carve_query(&q).unwrap().status, CacheStatus::Miss);
    }
}
