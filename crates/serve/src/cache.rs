//! A bounded LRU cache for carve results, keyed by md5 fingerprints.
//!
//! Carving is deterministic — the same `(version, params)` always
//! produces the same dataset — so the cache can hand out shared
//! `Arc`s of previously carved results and a warm request skips the
//! cluster scan entirely. The cache is bounded: inserting beyond
//! capacity evicts the least-recently-used entry. Hit, miss and
//! eviction counters are lock-free atomics exported via `/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nc_core::md5::Digest;

/// Point-in-time counter snapshot of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (0 disables the cache).
    pub capacity: usize,
}

#[derive(Debug)]
struct LruInner<V> {
    /// key → (last-use tick, tag, value).
    map: HashMap<Digest, (u64, u64, Arc<V>)>,
    /// Monotonic use counter; higher = more recently used.
    tick: u64,
}

/// A thread-safe, bounded least-recently-used cache.
///
/// Recency is tracked with a monotonic tick per entry; eviction scans
/// for the minimum tick. The scan is O(capacity), which is fine for
/// the intended capacities (tens of carve results, each worth an
/// entire cluster scan).
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    inner: Mutex<LruInner<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> LruCache<V> {
    /// Create a cache holding at most `capacity` entries. A capacity of
    /// 0 disables caching: every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a key, bumping its recency on a hit.
    pub fn get(&self, key: &Digest) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((stamp, _, value)) => {
                *stamp = tick;
                let value = Arc::clone(value);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a value with tag 0, evicting the least-recently-used
    /// entry when the cache is full and the key is new. Re-inserting an
    /// existing key replaces its value and bumps recency without
    /// evicting.
    pub fn insert(&self, key: Digest, value: Arc<V>) {
        self.insert_tagged(key, 0, value);
    }

    /// [`LruCache::insert`] with an explicit tag. Tags carry
    /// caller-defined grouping (the carve cache tags every entry with
    /// the snapshot version it was carved against) and drive
    /// [`LruCache::retain`]-based invalidation.
    pub fn insert_tagged(&self, key: Digest, tag: u64, value: Arc<V>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the stalest entry (minimum tick; key order breaks
            // exact ties deterministically — only reachable when two
            // entries share a tick, which the monotonic counter rules
            // out, but the tiebreak keeps eviction fully deterministic).
            if let Some(stale) = inner
                .map
                .iter()
                .min_by_key(|(k, (stamp, _, _))| (*stamp, **k))
                .map(|(k, _)| *k)
            {
                inner.map.remove(&stale);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, (tick, tag, value));
    }

    /// Snapshot of the resident entries as `(tag, value)` pairs, in
    /// deterministic key order. Used by publish-time reconciliation to
    /// find entries worth carrying forward to a new version.
    pub fn entries(&self) -> Vec<(u64, Arc<V>)> {
        let inner = self.inner.lock().expect("cache lock");
        let mut items: Vec<(Digest, u64, Arc<V>)> = inner
            .map
            .iter()
            .map(|(k, (_, tag, v))| (*k, *tag, Arc::clone(v)))
            .collect();
        items.sort_by_key(|(k, _, _)| *k);
        items.into_iter().map(|(_, tag, v)| (tag, v)).collect()
    }

    /// Drop every entry whose `(tag, value)` fails the predicate,
    /// returning how many were dropped. Unlike capacity evictions these
    /// are *invalidations*: they do not increment the eviction counter,
    /// so the two causes stay distinguishable in metrics.
    pub fn retain<F>(&self, keep: F) -> u64
    where
        F: Fn(u64, &V) -> bool,
    {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.map.len();
        inner.map.retain(|_, (_, tag, v)| keep(*tag, v));
        (before - inner.map.len()) as u64
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("cache lock").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::md5::md5;

    fn key(s: &str) -> Digest {
        md5(s.as_bytes())
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache: LruCache<String> = LruCache::new(2);
        assert!(cache.get(&key("a")).is_none());
        cache.insert(key("a"), Arc::new("A".into()));
        cache.insert(key("b"), Arc::new("B".into()));
        assert_eq!(*cache.get(&key("a")).unwrap(), "A");
        // "b" is now least recently used; inserting "c" evicts it.
        cache.insert(key("c"), Arc::new("C".into()));
        assert!(cache.get(&key("b")).is_none());
        assert_eq!(*cache.get(&key("a")).unwrap(), "A");
        assert_eq!(*cache.get(&key("c")).unwrap(), "C");

        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache: LruCache<u32> = LruCache::new(2);
        cache.insert(key("a"), Arc::new(1));
        cache.insert(key("b"), Arc::new(2));
        cache.insert(key("a"), Arc::new(3));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(*cache.get(&key("a")).unwrap(), 3);
        assert_eq!(*cache.get(&key("b")).unwrap(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: LruCache<u32> = LruCache::new(0);
        cache.insert(key("a"), Arc::new(1));
        assert!(cache.get(&key("a")).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn tags_drive_retain_and_entries() {
        let cache: LruCache<String> = LruCache::new(8);
        cache.insert_tagged(key("a"), 1, Arc::new("A".into()));
        cache.insert_tagged(key("b"), 1, Arc::new("B".into()));
        cache.insert_tagged(key("c"), 2, Arc::new("C".into()));

        let entries = cache.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries.iter().filter(|(tag, _)| *tag == 1).count(), 2);

        // Invalidate everything tagged 1.
        let dropped = cache.retain(|tag, _| tag != 1);
        assert_eq!(dropped, 2);
        assert!(cache.get(&key("a")).is_none());
        assert_eq!(*cache.get(&key("c")).unwrap(), "C");
        // Invalidations are not capacity evictions.
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn shared_access_from_threads() {
        let cache: Arc<LruCache<u64>> = Arc::new(LruCache::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let k = key(&format!("k{}", i % 6));
                        if cache.get(&k).is_none() {
                            cache.insert(k, Arc::new(t * 1000 + i));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.entries <= 8);
    }
}
