//! The canonical cache-key grammar: every carve-cache fingerprint is
//! minted here.
//!
//! Knob carves and query carves used to canonicalize their keys in two
//! separate places; this module is the single source of truth for both
//! grammars plus the shared encoding segment:
//!
//! * knob carves — `nc-carve-v1|version=…|h_low=…|h_high=…|sample=…|output=…|seed=…`
//!   with floats rendered via `to_bits`, so two parameter sets collide
//!   iff they are bit-identical — exactly the condition under which
//!   carving returns the same dataset;
//! * query carves — `nc-carve-q1|version=…|<canonical query text>`,
//!   where the canonical text is order- and whitespace-insensitive
//!   (object keys are sorted before rendering), so two JSON bodies that
//!   denote the same pipeline share a cache entry;
//! * encoded carves — either grammar with
//!   `|enc=clk1|key=…|bits=…|k=…|q=…`
//!   ([`EncodingParams::canonical`]) appended. A plaintext carve and an
//!   encoded carve of the same dataset therefore never share a key, and
//!   neither do two encodings under different keys or geometries.
//!   Plaintext keys render byte-identically to the pre-encoding
//!   grammar, so introducing encodings invalidated nothing.

use nc_core::customize::CustomizeParams;
use nc_core::md5::{md5, Digest};
use nc_pprl::EncodingParams;

/// Append the encoding segment (empty for plaintext carves).
fn encoding_segment(out: &mut String, encoding: Option<&EncodingParams>) {
    if let Some(enc) = encoding {
        out.push('|');
        out.push_str(&enc.canonical());
    }
}

/// Canonical fingerprint of a knob carve:
/// `(version, params, encoding)`.
pub fn knob_fingerprint(
    version: u32,
    params: &CustomizeParams,
    encoding: Option<&EncodingParams>,
) -> Digest {
    let mut canonical = format!(
        "nc-carve-v1|version={}|h_low={:016x}|h_high={:016x}|sample={}|output={}|seed={}",
        version,
        params.h_low.to_bits(),
        params.h_high.to_bits(),
        params.sample_clusters,
        params.output_clusters,
        params.seed,
    );
    encoding_segment(&mut canonical, encoding);
    md5(canonical.as_bytes())
}

/// Canonical fingerprint of a query carve:
/// `(version, canonical query text, encoding)`.
pub fn query_fingerprint(
    version: u32,
    canonical: &str,
    encoding: Option<&EncodingParams>,
) -> Digest {
    let mut text = format!("nc-carve-q1|version={version}|{canonical}");
    encoding_segment(&mut text, encoding);
    md5(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CustomizeParams {
        CustomizeParams {
            h_low: 0.06,
            h_high: 0.25,
            sample_clusters: 100,
            output_clusters: 50,
            seed: 42,
        }
    }

    #[test]
    fn plaintext_keys_match_the_pre_encoding_grammar() {
        let p = params();
        let legacy = md5(
            format!(
                "nc-carve-v1|version=3|h_low={:016x}|h_high={:016x}|sample=100|output=50|seed=42",
                p.h_low.to_bits(),
                p.h_high.to_bits(),
            )
            .as_bytes(),
        );
        assert_eq!(knob_fingerprint(3, &p, None), legacy);
        let canonical = "{\"pipeline\":[]}";
        assert_eq!(
            query_fingerprint(3, canonical, None),
            md5(format!("nc-carve-q1|version=3|{canonical}").as_bytes())
        );
    }

    #[test]
    fn encoded_and_plaintext_keys_never_collide() {
        let p = params();
        let enc = EncodingParams::default();
        assert_ne!(
            knob_fingerprint(1, &p, None),
            knob_fingerprint(1, &p, Some(&enc))
        );
        assert_ne!(
            query_fingerprint(1, "{\"pipeline\":[]}", None),
            query_fingerprint(1, "{\"pipeline\":[]}", Some(&enc))
        );
    }

    #[test]
    fn encoding_key_and_geometry_are_part_of_the_cache_key() {
        let p = params();
        let base = EncodingParams::default();
        for other in [
            EncodingParams { key: 7, ..base },
            EncodingParams { bits: 2048, ..base },
            EncodingParams { hashes: 5, ..base },
            EncodingParams { q: 3, ..base },
        ] {
            assert_ne!(
                knob_fingerprint(1, &p, Some(&base)),
                knob_fingerprint(1, &p, Some(&other)),
                "{other:?} must key separately"
            );
        }
    }

    #[test]
    fn version_distinguishes_keys_in_both_grammars() {
        let p = params();
        let enc = EncodingParams::default();
        assert_ne!(
            knob_fingerprint(1, &p, Some(&enc)),
            knob_fingerprint(2, &p, Some(&enc))
        );
        assert_ne!(
            query_fingerprint(1, "q", Some(&enc)),
            query_fingerprint(2, "q", Some(&enc))
        );
    }
}
