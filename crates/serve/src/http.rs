//! Minimal HTTP/1.1 message handling over blocking streams.
//!
//! Just enough of RFC 9112 for the carve service: one request per
//! connection (`Connection: close` on every response), request-line +
//! headers + optional `Content-Length` body, and
//! `application/x-www-form-urlencoded` / query-string decoding. No
//! chunked encoding, no keep-alive, no TLS — and no dependencies, so
//! the offline `.verify` stub harness keeps working.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on the request body; [`read_request_limited`] lets the
/// server lower or raise it per deployment (`ServeConfig::max_body_bytes`).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component of the target, e.g. `/carve`.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Errors produced while reading a request. [`ParseError::status`]
/// maps each to the response code the server should send.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// The bytes on the wire are not a well-formed request.
    Malformed(String),
    /// The head or body exceeded the configured limits.
    TooLarge,
    /// The underlying stream failed.
    Io(io::Error),
}

impl ParseError {
    /// The HTTP status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::ConnectionClosed | ParseError::Io(_) => 400,
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge => 413,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(err: io::Error) -> Self {
        ParseError::Io(err)
    }
}

/// Read and parse one request from a blocking stream, with the default
/// body cap ([`MAX_BODY_BYTES`]).
pub fn read_request<S: Read>(stream: S) -> Result<Request, ParseError> {
    read_request_limited(stream, MAX_BODY_BYTES)
}

/// Read and parse one request, rejecting bodies over `max_body_bytes`
/// with [`ParseError::TooLarge`] (mapped to `413`).
pub fn read_request_limited<S: Read>(
    stream: S,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);

    let mut consumed = 0usize;
    let request_line = read_head_line(&mut reader, &mut consumed)?;
    if request_line.is_empty() {
        return Err(ParseError::ConnectionClosed);
    }
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_head_line(&mut reader, &mut consumed)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(ParseError::TooLarge);
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read one CRLF- (or LF-) terminated head line, enforcing the head
/// size cap across calls via `consumed`. `consumed` counts every wire
/// byte, including the CR/LF terminators stripped from returned lines.
fn read_head_line<R: BufRead>(reader: &mut R, consumed: &mut usize) -> Result<String, ParseError> {
    let mut line = String::new();
    let n = reader
        .take((MAX_HEAD_BYTES - (*consumed).min(MAX_HEAD_BYTES)) as u64)
        .read_line(&mut line)?;
    *consumed += n;
    if n == 0 {
        if *consumed >= MAX_HEAD_BYTES {
            // The cap ran out exactly at a line boundary: `take(0)`
            // reads nothing, which must not masquerade as
            // end-of-headers (or a closed connection).
            return Err(ParseError::TooLarge);
        }
        return Ok(String::new());
    }
    if !line.ends_with('\n') {
        // `take` ran dry mid-line: the head is over the cap.
        return Err(ParseError::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// The body of a [`Response`]: either a single buffer sent with
/// `Content-Length`, or a sequence of chunks sent with
/// `Transfer-Encoding: chunked` (used by `/watch`, whose delta frames
/// are naturally incremental).
#[derive(Debug, Clone)]
enum Payload {
    /// One contiguous body, framed by `Content-Length`.
    Full(Vec<u8>),
    /// Chunked transfer encoding; each element becomes one chunk.
    Chunked(Vec<Vec<u8>>),
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    payload: Payload,
}

impl Response {
    /// Start a response with the given status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            payload: Payload::Full(Vec::new()),
        }
    }

    /// A `text/plain` response with the given body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .body(body.into().into_bytes())
    }

    /// An `application/jsonlines` response with the given body.
    pub fn json_lines(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status)
            .header("Content-Type", "application/jsonlines; charset=utf-8")
            .body(body.into())
    }

    /// Add a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Set the body (switches the response back to `Content-Length`
    /// framing if chunks had been set).
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.payload = Payload::Full(body);
        self
    }

    /// Send the body as `Transfer-Encoding: chunked`, one wire chunk
    /// per element. Empty elements are skipped at write time — an
    /// empty chunk is the terminator in chunked framing, so emitting
    /// one mid-stream would truncate the body at the receiver.
    pub fn chunked(mut self, chunks: Vec<Vec<u8>>) -> Self {
        self.payload = Payload::Chunked(chunks);
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize onto the wire. Framing (`Content-Length` or
    /// `Transfer-Encoding: chunked`) and `Connection: close` are always
    /// appended.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        match &self.payload {
            Payload::Full(body) => {
                head.push_str(&format!("Content-Length: {}\r\n", body.len()));
                head.push_str("Connection: close\r\n\r\n");
                w.write_all(head.as_bytes())?;
                w.write_all(body)?;
            }
            Payload::Chunked(chunks) => {
                head.push_str("Transfer-Encoding: chunked\r\n");
                head.push_str("Connection: close\r\n\r\n");
                w.write_all(head.as_bytes())?;
                for chunk in chunks {
                    if chunk.is_empty() {
                        continue;
                    }
                    w.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
                    w.write_all(chunk)?;
                    w.write_all(b"\r\n")?;
                }
                w.write_all(b"0\r\n\r\n")?;
            }
        }
        w.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Decode `application/x-www-form-urlencoded` (also query strings):
/// `&`-separated `key=value` pairs with `+` as space and `%XX` escapes.
/// Pairs with empty keys are dropped; a key without `=` gets an empty
/// value.
pub fn parse_form(input: &str) -> Vec<(String, String)> {
    input
        .split('&')
        .filter(|part| !part.is_empty())
        .filter_map(|part| {
            let (key, value) = part.split_once('=').unwrap_or((part, ""));
            let key = percent_decode(key);
            if key.is_empty() {
                None
            } else {
                Some((key, percent_decode(value)))
            }
        })
        .collect()
}

/// Decode `%XX` escapes and `+`-as-space. Invalid escapes are passed
/// through literally; bytes are reassembled as (lossy) UTF-8.
///
/// Works on raw bytes throughout — slicing the `&str` at `%`+2 would
/// panic on a multibyte UTF-8 character straddling the slice boundary,
/// and byte-wise hex classification also rejects the `+f`/` f` forms
/// `from_str_radix` would accept.
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (bytes.get(i + 1), bytes.get(i + 2)) {
                (Some(&hi), Some(&lo)) if hi.is_ascii_hexdigit() && lo.is_ascii_hexdigit() => {
                    out.push(hex_value(hi) << 4 | hex_value(lo));
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Value of an ASCII hex digit (caller guarantees `is_ascii_hexdigit`).
fn hex_value(digit: u8) -> u8 {
    match digit {
        b'0'..=b'9' => digit - b'0',
        b'a'..=b'f' => digit - b'a' + 10,
        _ => digit - b'A' + 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /datasets/nc1?seed=7&page=2 HTTP/1.1\r\nHost: localhost\r\nX-Test: yes\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/datasets/nc1");
        assert_eq!(req.query, "seed=7&page=2");
        assert_eq!(req.header("x-test"), Some("yes"));
        assert_eq!(req.header("X-Test"), Some("yes"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /carve HTTP/1.1\r\nContent-Length: 9\r\n\r\npreset=nc2";
        // Content-Length 9 truncates the 10-byte body on purpose.
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"preset=nc");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_request(&b"NOT-HTTP\r\n\r\n"[..]),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&b"GET / SPDY/3\r\n\r\n"[..]),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&b""[..]),
            Err(ParseError::ConnectionClosed)
        ));
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            read_request(huge.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /carve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn body_cap_is_configurable() {
        let raw = b"POST /carve HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\": 42 }";
        assert!(read_request_limited(&raw[..], 10).is_ok());
        assert!(matches!(
            read_request_limited(&raw[..], 9),
            Err(ParseError::TooLarge)
        ));
        // The default entry point keeps the 1 MiB cap.
        assert!(read_request(&raw[..]).is_ok());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .header("X-Version", "3")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Version: 3\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn chunked_wire_format() {
        let mut out = Vec::new();
        Response::new(200)
            .header("Content-Type", "application/jsonlines; charset=utf-8")
            .chunked(vec![
                b"{\"a\":1}\n".to_vec(),
                Vec::new(), // empty chunks are skipped, not emitted
                b"{\"b\":22}\n".to_vec(),
            ])
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        // Hex chunk sizes frame each body piece; the stream ends with
        // the zero-length terminator chunk.
        assert!(text.contains("\r\n\r\n8\r\n{\"a\":1}\n\r\n9\r\n{\"b\":22}\n\r\n0\r\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn gone_status_has_a_reason() {
        assert_eq!(status_reason(410), "Gone");
    }

    #[test]
    fn form_decoding() {
        let pairs = parse_form("preset=nc1&name=O%27BRIEN+JR&flag&=dropped&pct=%ZZ");
        assert_eq!(
            pairs,
            vec![
                ("preset".to_string(), "nc1".to_string()),
                ("name".to_string(), "O'BRIEN JR".to_string()),
                ("flag".to_string(), String::new()),
                ("pct".to_string(), "%ZZ".to_string()),
            ]
        );
        assert!(parse_form("").is_empty());
    }

    #[test]
    fn percent_decode_survives_multibyte_after_percent() {
        // A multibyte char right after `%` must not panic (str slicing
        // at fixed byte offsets would split the char mid-sequence).
        assert_eq!(parse_form("a=%€x"), vec![("a".into(), "%€x".into())]);
        assert_eq!(parse_form("a=%é"), vec![("a".into(), "%é".into())]);
        assert_eq!(parse_form("a=€%20€"), vec![("a".into(), "€ €".into())]);
        // Trailing escapes, complete and truncated.
        assert_eq!(parse_form("a=%2F"), vec![("a".into(), "/".into())]);
        assert_eq!(parse_form("a=%2"), vec![("a".into(), "%2".into())]);
        assert_eq!(parse_form("a=%"), vec![("a".into(), "%".into())]);
    }

    #[test]
    fn percent_decode_rejects_signed_and_spaced_hex() {
        // `from_str_radix` would accept "+f" as 0x0F; byte-wise hex
        // classification must not.
        assert_eq!(parse_form("a=%+fx"), vec![("a".into(), "% fx".into())]);
        assert_eq!(parse_form("a=%-1x"), vec![("a".into(), "%-1x".into())]);
        // Mixed-case hex still decodes (0x4F = 'O').
        assert_eq!(parse_form("a=%4f%4F"), vec![("a".into(), "OO".into())]);
    }

    #[test]
    fn head_cap_at_line_boundary_is_too_large() {
        // Fill the head cap exactly with complete header lines; the
        // head is unterminated, so this must be TooLarge — not a
        // silently truncated header set.
        let request_line = "GET / HTTP/1.1\r\n";
        let mut raw = String::from(request_line);
        let filler = "x-filler: yyyyyyyyyyyyyyyy\r\n";
        while raw.len() + filler.len() <= MAX_HEAD_BYTES {
            raw.push_str(filler);
        }
        let pad = MAX_HEAD_BYTES - raw.len();
        if pad > 0 {
            // One last line sized to land exactly on the cap.
            raw.push_str(&format!("x-pad: {}\r\n", "z".repeat(pad.saturating_sub(9))));
        }
        assert_eq!(raw.len(), MAX_HEAD_BYTES);
        assert!(matches!(
            read_request(raw.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }
}
