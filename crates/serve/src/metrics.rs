//! Service counters and per-endpoint latency histograms, rendered as a
//! plain-text `/metrics` page (prometheus-style exposition, hand-rolled
//! — no dependencies).
//!
//! All counters are relaxed atomics: `/metrics` is an observability
//! endpoint, not a synchronization point, and a handler thread must
//! never contend with another over bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheStats;
use crate::carve::{DeltaStats, QueryStats};

/// Upper bounds (µs) of the latency histogram buckets; an implicit
/// `+Inf` bucket follows. Spans sub-millisecond cache hits through
/// second-scale cold carves.
pub const LATENCY_BUCKETS_MICROS: [u64; 7] =
    [250, 1_000, 4_000, 16_000, 65_000, 250_000, 1_000_000];

/// The endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /carve`
    Carve,
    /// `POST /carve/explain`
    Explain,
    /// `GET /datasets/{preset}`
    Datasets,
    /// `GET /watch`
    Watch,
    /// Anything else (404s, bad methods, parse failures).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Carve,
        Endpoint::Explain,
        Endpoint::Datasets,
        Endpoint::Watch,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Carve => 2,
            Endpoint::Explain => 3,
            Endpoint::Datasets => 4,
            Endpoint::Watch => 5,
            Endpoint::Other => 6,
        }
    }

    /// The label used in the metrics exposition.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Carve => "carve",
            Endpoint::Explain => "explain",
            Endpoint::Datasets => "datasets",
            Endpoint::Watch => "watch",
            Endpoint::Other => "other",
        }
    }
}

#[derive(Debug, Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    /// One counter per `LATENCY_BUCKETS_MICROS` bound, plus +Inf.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_MICROS.len() + 1],
    latency_sum_micros: AtomicU64,
}

/// All service counters. Cheap to update from any number of threads.
#[derive(Debug, Default)]
pub struct Metrics {
    requests_total: AtomicU64,
    in_flight: AtomicU64,
    queue_saturated: AtomicU64,
    worker_panics: AtomicU64,
    socket_cfg_failures: AtomicU64,
    endpoints: [EndpointStats; Endpoint::ALL.len()],
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Mark a request as started (bumps the in-flight gauge). Pair with
    /// [`Metrics::record`].
    pub fn begin(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a finished request: its endpoint, response status and
    /// handling latency. Decrements the in-flight gauge.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        let stats = &self.endpoints[endpoint.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len());
        stats.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        stats.latency_sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Total requests accepted so far.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Requests currently being handled.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Count one connection turned away with `503` because the worker
    /// queue was full (acceptor backpressure).
    pub fn saturation_inc(&self) {
        self.queue_saturated.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections rejected so far because the worker queue was full.
    pub fn saturated(&self) -> u64 {
        self.queue_saturated.load(Ordering::Relaxed)
    }

    /// Count one handler panic caught by worker supervision (the
    /// worker survives; the connection gets a `500`).
    pub fn worker_panic_inc(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Count one failed per-socket configuration call (blocking mode or
    /// timeouts). The connection proceeds — a socket without its
    /// timeout is degraded, not dead — but silently swallowing the
    /// error would hide an OS-level problem from operators.
    pub fn socket_cfg_failure_inc(&self) {
        self.socket_cfg_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Socket-configuration failures so far.
    pub fn socket_cfg_failures(&self) -> u64 {
        self.socket_cfg_failures.load(Ordering::Relaxed)
    }

    /// Requests recorded for one endpoint.
    pub fn endpoint_requests(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint.index()]
            .requests
            .load(Ordering::Relaxed)
    }

    /// Render the `/metrics` page: service counters, cache counters,
    /// and cumulative per-endpoint latency histograms.
    pub fn render(
        &self,
        cache: &CacheStats,
        delta: &DeltaStats,
        query: &QueryStats,
        current_version: u32,
        versions: usize,
    ) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "nc_serve_requests_total {}\n",
            self.requests_total()
        ));
        out.push_str(&format!("nc_serve_in_flight {}\n", self.in_flight()));
        out.push_str(&format!(
            "nc_serve_queue_saturated_total {}\n",
            self.saturated()
        ));
        out.push_str(&format!(
            "nc_serve_worker_panics_total {}\n",
            self.worker_panics()
        ));
        out.push_str(&format!(
            "nc_serve_socket_cfg_failures_total {}\n",
            self.socket_cfg_failures()
        ));
        out.push_str(&format!(
            "nc_serve_snapshot_current_version {current_version}\n"
        ));
        out.push_str(&format!("nc_serve_snapshot_versions {versions}\n"));
        out.push_str(&format!("nc_serve_cache_hits_total {}\n", cache.hits));
        out.push_str(&format!("nc_serve_cache_misses_total {}\n", cache.misses));
        out.push_str(&format!(
            "nc_serve_cache_evictions_total {}\n",
            cache.evictions
        ));
        out.push_str(&format!("nc_serve_cache_entries {}\n", cache.entries));
        out.push_str(&format!("nc_serve_cache_capacity {}\n", cache.capacity));
        out.push_str(&format!(
            "nc_serve_cache_invalidated_total {}\n",
            delta.invalidated
        ));
        out.push_str(&format!(
            "nc_serve_cache_carried_forward_total {}\n",
            delta.carried_forward
        ));
        out.push_str(&format!(
            "nc_query_conjuncts_indexed_total {}\n",
            query.conjuncts_indexed
        ));
        out.push_str(&format!(
            "nc_query_conjuncts_scanned_total {}\n",
            query.conjuncts_scanned
        ));

        for endpoint in Endpoint::ALL {
            let stats = &self.endpoints[endpoint.index()];
            let label = endpoint.label();
            out.push_str(&format!(
                "nc_serve_endpoint_requests_total{{endpoint=\"{label}\"}} {}\n",
                stats.requests.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "nc_serve_endpoint_errors_total{{endpoint=\"{label}\"}} {}\n",
                stats.errors.load(Ordering::Relaxed)
            ));
            let mut cumulative = 0u64;
            for (i, bound) in LATENCY_BUCKETS_MICROS.iter().enumerate() {
                cumulative += stats.latency_buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "nc_serve_latency_micros_bucket{{endpoint=\"{label}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            cumulative += stats.latency_buckets[LATENCY_BUCKETS_MICROS.len()]
                .load(Ordering::Relaxed);
            out.push_str(&format!(
                "nc_serve_latency_micros_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "nc_serve_latency_micros_sum{{endpoint=\"{label}\"}} {}\n",
                stats.latency_sum_micros.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "nc_serve_latency_micros_count{{endpoint=\"{label}\"}} {cumulative}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_record_roundtrip() {
        let m = Metrics::new();
        m.begin();
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.requests_total(), 1);
        m.record(Endpoint::Carve, 200, 500);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.endpoint_requests(Endpoint::Carve), 1);

        m.begin();
        m.record(Endpoint::Carve, 404, 2_000_000);
        m.saturation_inc();
        assert_eq!(m.saturated(), 1);
        m.worker_panic_inc();
        m.socket_cfg_failure_inc();
        m.socket_cfg_failure_inc();
        assert_eq!(m.worker_panics(), 1);
        assert_eq!(m.socket_cfg_failures(), 2);
        let text = m.render(
            &CacheStats::default(),
            &DeltaStats::default(),
            &QueryStats::default(),
            3,
            2,
        );
        assert!(text.contains("nc_serve_requests_total 2\n"));
        assert!(text.contains("nc_serve_in_flight 0\n"));
        assert!(text.contains("nc_serve_queue_saturated_total 1\n"));
        assert!(text.contains("nc_serve_worker_panics_total 1\n"));
        assert!(text.contains("nc_serve_socket_cfg_failures_total 2\n"));
        assert!(text.contains("nc_serve_snapshot_current_version 3\n"));
        assert!(text.contains("nc_serve_endpoint_requests_total{endpoint=\"carve\"} 2\n"));
        assert!(text.contains("nc_serve_endpoint_errors_total{endpoint=\"carve\"} 1\n"));
        // 500µs lands in the le="1000" bucket; the 2s outlier only in +Inf.
        assert!(text.contains("nc_serve_latency_micros_bucket{endpoint=\"carve\",le=\"1000\"} 1\n"));
        assert!(text.contains("nc_serve_latency_micros_bucket{endpoint=\"carve\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("nc_serve_latency_micros_sum{endpoint=\"carve\"} 2000500\n"));
        assert!(text.contains("nc_serve_latency_micros_count{endpoint=\"carve\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        for micros in [100, 100, 3_000, 50_000] {
            m.begin();
            m.record(Endpoint::Datasets, 200, micros);
        }
        let text = m.render(
            &CacheStats::default(),
            &DeltaStats::default(),
            &QueryStats::default(),
            1,
            1,
        );
        assert!(text.contains("{endpoint=\"datasets\",le=\"250\"} 2\n"));
        assert!(text.contains("{endpoint=\"datasets\",le=\"4000\"} 3\n"));
        assert!(text.contains("{endpoint=\"datasets\",le=\"65000\"} 4\n"));
        assert!(text.contains("{endpoint=\"datasets\",le=\"+Inf\"} 4\n"));
    }

    #[test]
    fn cache_counters_flow_through() {
        let m = Metrics::new();
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            entries: 3,
            capacity: 8,
        };
        let delta = DeltaStats {
            invalidated: 4,
            carried_forward: 6,
        };
        let text = m.render(&cache, &delta, &QueryStats::default(), 1, 1);
        assert!(text.contains("nc_serve_cache_hits_total 5\n"));
        assert!(text.contains("nc_serve_cache_misses_total 2\n"));
        assert!(text.contains("nc_serve_cache_evictions_total 1\n"));
        assert!(text.contains("nc_serve_cache_entries 3\n"));
        assert!(text.contains("nc_serve_cache_capacity 8\n"));
        assert!(text.contains("nc_serve_cache_invalidated_total 4\n"));
        assert!(text.contains("nc_serve_cache_carried_forward_total 6\n"));
    }

    #[test]
    fn watch_endpoint_is_tracked() {
        let m = Metrics::new();
        m.begin();
        m.record(Endpoint::Watch, 200, 100);
        assert_eq!(m.endpoint_requests(Endpoint::Watch), 1);
        let text = m.render(
            &CacheStats::default(),
            &DeltaStats::default(),
            &QueryStats::default(),
            1,
            1,
        );
        assert!(text.contains("nc_serve_endpoint_requests_total{endpoint=\"watch\"} 1\n"));
    }
}
