//! The TCP front end: accept loop, worker pool, routing and graceful
//! shutdown.
//!
//! Connections are accepted on a nonblocking `std::net::TcpListener`
//! and pushed into a bounded crossbeam channel; a pool of worker
//! threads (sized by [`nc_core::scoring::ScoringConfig`] — the same
//! "0 means hardware parallelism" convention as the scoring pool)
//! drains the channel and handles one request per connection. Shutdown
//! is graceful by construction: the acceptor stops accepting, drops
//! the sender, and every worker finishes the connections already in
//! the queue before its `recv` disconnects and the scope joins.
//!
//! # Panic isolation
//!
//! Workers are supervised at two layers. Inside the handler, routing
//! runs under `catch_unwind`: a panicking carve turns into a `500`
//! (counted in `nc_serve_worker_panics_total`) while the connection
//! and the worker both survive. Around the drain loop, a second
//! `catch_unwind` resurrects the worker if a panic ever escapes the
//! inner layer — the pool never shrinks below its configured size, so
//! a pathological request cannot brown out the service one worker at
//! a time.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel::TrySendError;
use nc_core::scoring::ScoringConfig;

use nc_query::{CarveQuery, QueryError, QueryErrorKind};

use crate::carve::{
    json_escape_into, parse_carve_request, parse_encoding_params, CarveError, CarveEngine,
    CarveOutcome, RequestDefaults,
};
use crate::http::{parse_form, read_request_limited, ParseError, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::snapshot::{PublishDelta, ServeSnapshot, SnapshotRegistry};

/// How long the acceptor sleeps when there is nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Per-connection socket read/write timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Tunables of a serve instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; `0` means one per available hardware thread
    /// (the [`ScoringConfig`] convention).
    pub workers: usize,
    /// Connections that may queue between acceptor and workers.
    pub queue_depth: usize,
    /// Carve results kept in the LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Largest accepted request body in bytes; larger bodies are
    /// answered with `413` before the handler runs.
    pub max_body_bytes: usize,
    /// Defaults for requests that omit parameters.
    pub defaults: RequestDefaults,
    /// Expose `GET /debug/panic`, a route that panics inside the
    /// handler. Off by default; tests enable it to prove worker
    /// supervision keeps the pool alive through a panicking handler.
    pub panic_probe: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 32,
            max_body_bytes: crate::http::MAX_BODY_BYTES,
            defaults: RequestDefaults {
                sample: 1000,
                output: 100,
                seed: 42,
                page_size: 100,
                max_page_size: 10_000,
            },
            panic_probe: false,
        }
    }
}

/// Shared state of a running service: the snapshot registry, the carve
/// engine (with its cache) and the metrics counters.
#[derive(Debug)]
pub struct ServeState {
    registry: Arc<SnapshotRegistry>,
    engine: CarveEngine,
    metrics: Metrics,
    config: ServeConfig,
}

impl ServeState {
    /// Build the state for a registry and configuration.
    pub fn new(registry: Arc<SnapshotRegistry>, config: ServeConfig) -> Self {
        let engine = CarveEngine::new(Arc::clone(&registry), config.cache_capacity);
        ServeState {
            registry,
            engine,
            metrics: Metrics::new(),
            config,
        }
    }

    /// The snapshot registry (publish new versions through this).
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// Publish a new snapshot version with its change delta, letting
    /// the carve engine reconcile the warm cache (carry forward
    /// unaffected carves, invalidate dead-version entries). Passing
    /// `None` for the delta publishes conservatively: nothing is
    /// carried forward and `/watch` subscribers see a gap.
    pub fn publish(
        &self,
        snapshot: ServeSnapshot,
        delta: Option<PublishDelta>,
    ) -> Arc<ServeSnapshot> {
        self.engine.publish(snapshot, delta)
    }

    /// The carve engine.
    pub fn engine(&self) -> &CarveEngine {
        &self.engine
    }

    /// The metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

/// The service entry point: binds and spawns the accept/worker threads.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Bind the configured address and start serving in background
    /// threads. Returns once the listener is bound — the returned
    /// handle exposes the bound address immediately.
    pub fn spawn(state: Arc<ServeState>) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&state.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("nc-serve".to_string())
            .spawn(move || run(listener, state, stop_flag))?;

        Ok(ServerHandle { addr, stop, thread })
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep serving
/// until the process exits).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The actually bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join all threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

/// Acceptor + worker-pool body, run on the `nc-serve` thread.
fn run(listener: TcpListener, state: Arc<ServeState>, stop: Arc<AtomicBool>) {
    let workers = ScoringConfig::with_threads(state.config.workers)
        .effective_threads()
        .max(1);
    let queue_depth = state.config.queue_depth.max(1);

    crossbeam::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(queue_depth);
        // The crossbeam stub's Receiver wraps mpsc (not Sync), so the
        // workers share it behind a mutex; each holds the lock only
        // while blocked in `recv`, never while handling a connection.
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            scope.spawn(move |_| loop {
                // Outer supervision layer: if a panic ever escapes the
                // per-request catch in `handle_connection`, count it
                // and resurrect the worker instead of shrinking the
                // pool. A clean exit (queue disconnected) ends it.
                let drained = panic::catch_unwind(AssertUnwindSafe(|| loop {
                    let conn = {
                        // A panicking sibling may have poisoned the
                        // queue lock; the data behind it (an mpsc
                        // receiver) is panic-safe, so keep serving.
                        let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.recv()
                    };
                    match conn {
                        Ok(stream) => handle_connection(stream, &state),
                        // Sender dropped and queue drained: shutdown.
                        Err(_) => break,
                    }
                }));
                match drained {
                    Ok(()) => break,
                    Err(_) => state.metrics.worker_panic_inc(),
                }
            });
        }

        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                // Backpressure: never block the acceptor on a full
                // queue. A saturated service answers 503 immediately —
                // the client learns to retry instead of silently
                // waiting in a kernel backlog that times out.
                Ok((stream, _peer)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => saturated_reply(stream, &state),
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Dropping the sender lets the workers drain what is queued and
        // then exit; the scope joins them before `run` returns.
        drop(tx);
    })
    .expect("serve scope");
}

/// Turn a connection away because the worker queue is full: `503` with
/// a `Retry-After` hint, written from the acceptor thread (the whole
/// point is not to queue). Counted both in the per-endpoint error
/// metrics and the dedicated saturation counter.
fn saturated_reply(stream: TcpStream, state: &ServeState) {
    count_cfg(state, stream.set_nonblocking(false));
    count_cfg(state, stream.set_write_timeout(Some(SOCKET_TIMEOUT)));
    // Short read timeout: this runs on the acceptor thread, which must
    // not be parked long by a client that trickles its request in.
    count_cfg(
        state,
        stream.set_read_timeout(Some(Duration::from_millis(250))),
    );
    state.metrics.begin();
    let started = Instant::now();
    state.metrics.saturation_inc();
    let response =
        Response::text(503, "service saturated, retry shortly\n").header("Retry-After", "1");
    let _ = response.write_to(&stream);
    // Half-close and drain the unread request: closing a socket with
    // bytes still in its receive buffer sends RST, which would tear the
    // 503 out of the client's hands before it reads it.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 512];
    for _ in 0..8 {
        match io::Read::read(&mut (&stream), &mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    state.metrics.record(Endpoint::Other, 503, micros);
}

/// Record a per-socket configuration outcome: failures are counted
/// (see [`Metrics::socket_cfg_failure_inc`]) but not fatal — the
/// connection proceeds with whatever the OS left configured.
fn count_cfg(state: &ServeState, outcome: io::Result<()>) {
    if outcome.is_err() {
        state.metrics.socket_cfg_failure_inc();
    }
}

/// Handle one connection: parse, route, respond, record metrics.
///
/// Routing runs under `catch_unwind`: a panicking handler becomes a
/// `500` on this connection and a bump of
/// `nc_serve_worker_panics_total`, and the worker carries on with the
/// next connection.
fn handle_connection(stream: TcpStream, state: &ServeState) {
    // Accepted sockets must block again (the listener is nonblocking).
    count_cfg(state, stream.set_nonblocking(false));
    count_cfg(state, stream.set_read_timeout(Some(SOCKET_TIMEOUT)));
    count_cfg(state, stream.set_write_timeout(Some(SOCKET_TIMEOUT)));

    state.metrics.begin();
    let started = Instant::now();

    let (endpoint, response) = match read_request_limited(&stream, state.config.max_body_bytes) {
        Ok(request) => {
            match panic::catch_unwind(AssertUnwindSafe(|| route(&request, state))) {
                Ok(routed) => routed,
                Err(_) => {
                    state.metrics.worker_panic_inc();
                    (
                        Endpoint::Other,
                        Response::text(500, "internal error: handler panicked\n"),
                    )
                }
            }
        }
        Err(err) => (Endpoint::Other, parse_error_response(&err, state)),
    };

    let _ = response.write_to(&stream);
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    state.metrics.record(endpoint, response.status(), micros);
}

/// Map a request-parse failure to its response. Body-cap violations
/// (`413`) get a structured JSON body so carve-by-query clients can
/// handle them like any other typed query error.
fn parse_error_response(err: &ParseError, state: &ServeState) -> Response {
    if matches!(err, ParseError::TooLarge) {
        let body = format!(
            "{{\"error\":{{\"kind\":\"too-large\",\"message\":\"request exceeds the configured limits (body cap {} bytes)\"}}}}",
            state.config.max_body_bytes
        );
        return Response::new(413)
            .header("Content-Type", "application/json; charset=utf-8")
            .body(body.into_bytes());
    }
    Response::text(err.status(), "bad request: cannot parse\n")
}

/// Dispatch a parsed request to its handler.
fn route(request: &Request, state: &ServeState) -> (Endpoint, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/debug/panic") if state.config.panic_probe => {
            panic!("panic probe: deliberate handler panic for supervision tests")
        }
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(state)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics_page(state)),
        ("POST", "/carve") => (Endpoint::Carve, carve_from_body(request, state)),
        ("POST", "/carve/explain") => (Endpoint::Explain, explain_from_body(request, state)),
        ("GET", "/watch") => (Endpoint::Watch, watch(request, state)),
        ("GET", path) if path.starts_with("/datasets/") => (
            Endpoint::Datasets,
            dataset_preset(&path["/datasets/".len()..], request, state),
        ),
        (_, "/healthz") | (_, "/metrics") | (_, "/carve") | (_, "/carve/explain")
        | (_, "/watch") => (
            Endpoint::Other,
            Response::text(405, "method not allowed\n"),
        ),
        (_, path) if path.starts_with("/datasets/") => (
            Endpoint::Other,
            Response::text(405, "method not allowed\n"),
        ),
        _ => (Endpoint::Other, Response::text(404, "not found\n")),
    }
}

fn healthz(state: &ServeState) -> Response {
    let snapshot = state.registry.current();
    Response::text(
        200,
        format!(
            "ok\nversion {}\nclusters {}\nrecords {}\n",
            snapshot.version(),
            snapshot.cluster_count(),
            snapshot.record_count()
        ),
    )
}

fn metrics_page(state: &ServeState) -> Response {
    let cache = state.engine.cache_stats();
    let delta = state.engine.delta_stats();
    let query = state.engine.query_stats();
    let current = state.registry.current().version();
    let versions = state.registry.versions().len();
    Response::text(
        200,
        state
            .metrics
            .render(&cache, &delta, &query, current, versions),
    )
}

/// `GET /watch?from=<version>` — the delta feed. Streams, as chunked
/// JSON lines, one summary line followed by one line per published
/// version in `from+1 ..= current` with its founded/revised cluster
/// ids. Subscribers poll with their last-seen version; `410 Gone`
/// means the recorded delta chain no longer reaches back to `from`
/// (retention evicted it, or a publish carried no delta) and the
/// subscriber must re-fetch a full carve.
fn watch(request: &Request, state: &ServeState) -> Response {
    let mut from: Option<u32> = None;
    for (key, value) in parse_form(&request.query) {
        match key.as_str() {
            "from" => match value.parse::<u32>() {
                Ok(v) => from = Some(v),
                Err(_) => {
                    return Response::text(400, format!("bad from `{value}`: expected a version\n"))
                }
            },
            other => return Response::text(400, format!("unknown parameter `{other}`\n")),
        }
    }
    let Some(from) = from else {
        return Response::text(400, "missing required parameter `from`\n");
    };

    let window = state.registry.watch_since(from);
    if window.gap {
        return Response::text(
            410,
            format!("no delta chain from version {from}; re-fetch a full carve\n"),
        )
        .header("X-Version", window.current.to_string());
    }

    let mut chunks = Vec::with_capacity(window.deltas.len() + 1);
    chunks.push(
        format!(
            "{{\"from\":{from},\"current\":{},\"deltas\":{}}}\n",
            window.current,
            window.deltas.len()
        )
        .into_bytes(),
    );
    for delta in &window.deltas {
        chunks.push(delta_json_line(delta).into_bytes());
    }
    Response::new(200)
        .header("Content-Type", "application/jsonlines; charset=utf-8")
        .header("X-Version", window.current.to_string())
        .header("X-Deltas", window.deltas.len().to_string())
        .chunked(chunks)
}

/// One `/watch` delta as a JSON line.
fn delta_json_line(delta: &PublishDelta) -> String {
    let mut line = String::with_capacity(64);
    line.push_str(&format!("{{\"version\":{},\"date\":\"", delta.version));
    json_escape_into(&mut line, &delta.date);
    line.push_str("\",\"founded\":[");
    for (i, ncid) in delta.founded.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        json_escape_into(&mut line, ncid);
        line.push('"');
    }
    line.push_str("],\"revised\":[");
    for (i, ncid) in delta.revised.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        json_escape_into(&mut line, ncid);
        line.push('"');
    }
    line.push_str("]}\n");
    line
}

/// Whether a `POST /carve` body is a JSON query document rather than
/// form data: declared via `Content-Type`, or opening with `{` (form
/// bodies never do — `{` would be percent-encoded).
fn is_json_body(request: &Request) -> bool {
    if request
        .header("content-type")
        .is_some_and(|ct| ct.to_ascii_lowercase().contains("json"))
    {
        return true;
    }
    request
        .body
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|&b| b == b'{')
}

/// `POST /carve` — either an `application/x-www-form-urlencoded` body
/// of knob parameters (query-string parameters are accepted too and
/// applied first), or an `application/json` query document compiled
/// and executed by `nc-query`.
fn carve_from_body(request: &Request, state: &ServeState) -> Response {
    if is_json_body(request) {
        return query_carve(request, state);
    }
    let mut pairs = parse_form(&request.query);
    match std::str::from_utf8(&request.body) {
        Ok(body) => pairs.extend(parse_form(body)),
        Err(_) => return Response::text(400, "body must be UTF-8 form data\n"),
    }
    carve_response(&pairs, state)
}

/// The carve-by-query path of `POST /carve`: parse + validate the JSON
/// query document, run it through the planning carve engine, and
/// answer with the carve's JSON lines (whole result, no paging — a
/// query pipeline expresses its own `limit`). The query string may
/// carry `encode*` parameters to request CLK-encoded output; any other
/// query-string key is rejected.
fn query_carve(request: &Request, state: &ServeState) -> Response {
    let encoding = match parse_encoding_params(&parse_form(&request.query)) {
        Ok(encoding) => encoding,
        Err(err) => return carve_error(err),
    };
    let query = match CarveQuery::parse(&request.body) {
        Ok(query) => query,
        Err(err) => return query_error(&err),
    };
    let outcome = match state.engine.carve_query_encoded(&query, encoding.as_ref()) {
        Ok(outcome) => outcome,
        Err(CarveError::UnknownVersion(v)) => return query_error(&QueryError::unknown_version(v)),
        Err(err) => return carve_error(err),
    };
    let CarveOutcome {
        version,
        status,
        result,
    } = outcome;

    let mut body = String::with_capacity(result.lines.iter().map(|l| l.len() + 1).sum());
    for line in &result.lines {
        body.push_str(line);
        body.push('\n');
    }
    let mut response = Response::json_lines(200, body.into_bytes())
        .header("X-Version", version.to_string())
        .header("X-Cache", status.as_str())
        .header("X-Total-Records", result.records.to_string())
        .header("X-Total-Clusters", result.clusters.to_string())
        .header("X-Duplicate-Pairs", result.duplicate_pairs.to_string())
        .header("X-Matched-Clusters", result.sampled.len().to_string());
    if let Some(enc) = &encoding {
        response = response.header("X-Encoding", enc.canonical());
    }
    response
}

/// `POST /carve/explain` — plan the JSON query document without
/// executing it and report the access plan (indexed vs scanned
/// conjuncts, estimated rows, stage list). Never cached.
fn explain_from_body(request: &Request, state: &ServeState) -> Response {
    let query = match CarveQuery::parse(&request.body) {
        Ok(query) => query,
        Err(err) => return query_error(&err),
    };
    match state.engine.explain_query(&query) {
        Ok(explain) => Response::new(200)
            .header("Content-Type", "application/json; charset=utf-8")
            .header("X-Version", explain.version.to_string())
            .body(explain.render_json().into_bytes()),
        Err(CarveError::UnknownVersion(v)) => query_error(&QueryError::unknown_version(v)),
        Err(err) => carve_error(err),
    }
}

/// A typed query error as an `application/json` response body carrying
/// the error kind plus its byte offset (JSON errors) or stage index and
/// field path (structure/validation errors).
fn query_error(err: &QueryError) -> Response {
    let status = match err.kind {
        QueryErrorKind::UnknownVersion => 404,
        _ => 400,
    };
    Response::new(status)
        .header("Content-Type", "application/json; charset=utf-8")
        .body(err.render_json().into_bytes())
}

/// `GET /datasets/{preset}` — the preset comes from the path, the
/// remaining knobs from the query string.
fn dataset_preset(preset: &str, request: &Request, state: &ServeState) -> Response {
    let mut pairs = vec![("preset".to_string(), preset.to_string())];
    pairs.extend(parse_form(&request.query));
    carve_response(&pairs, state)
}

/// Shared carve path: parse → engine → page slice → JSON-lines body.
fn carve_response(pairs: &[(String, String)], state: &ServeState) -> Response {
    let request = match parse_carve_request(pairs, &state.config.defaults) {
        Ok(request) => request,
        Err(err) => return carve_error(err),
    };
    let outcome = match state.engine.carve(&request) {
        Ok(outcome) => outcome,
        Err(err) => return carve_error(err),
    };
    let CarveOutcome {
        version,
        status,
        result,
    } = outcome;

    let page = result.page(request.page, request.page_size);
    let mut body = String::with_capacity(page.iter().map(|l| l.len() + 1).sum());
    for line in page {
        body.push_str(line);
        body.push('\n');
    }

    let mut response = Response::json_lines(200, body.into_bytes())
        .header("X-Version", version.to_string())
        .header("X-Cache", status.as_str())
        .header("X-Total-Records", result.records.to_string())
        .header("X-Total-Clusters", result.clusters.to_string())
        .header("X-Duplicate-Pairs", result.duplicate_pairs.to_string())
        .header("X-Page", request.page.to_string())
        .header("X-Page-Size", request.page_size.to_string())
        .header("X-Page-Records", page.len().to_string());
    if let Some(enc) = &request.encoding {
        response = response.header("X-Encoding", enc.canonical());
    }
    response
}

fn carve_error(err: CarveError) -> Response {
    let status = match err {
        CarveError::UnknownVersion(_) => 404,
        CarveError::InvalidParams(_) => 400,
    };
    Response::text(status, format!("{err}\n"))
}
