//! Umbrella crate for the `ncvoter-testdata` workspace.
//!
//! Re-exports every sub-crate and provides the [`bridge`] helpers that
//! connect the voter-specific pipeline (`nc-core`) with the
//! schema-agnostic detection and analysis layers (`nc-detect`,
//! `nc-analysis`). The repository-level integration tests and examples
//! are anchored here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nc_analysis as analysis;
pub use nc_core as core;
pub use nc_datasets as datasets;
pub use nc_detect as detect;
pub use nc_docstore as docstore;
pub use nc_pprl as pprl;
pub use nc_serve as serve;
pub use nc_shard as shard;
pub use nc_similarity as similarity;
pub use nc_votergen as votergen;

/// Conversions between the voter pipeline's typed rows and the generic
/// [`nc_detect::dataset::Dataset`].
pub mod bridge {
    use nc_core::cluster::ClusterStore;
    use nc_core::customize::CustomDataset;
    use nc_detect::dataset::Dataset;
    use nc_votergen::schema::{AttrId, Row, SCHEMA};

    /// Build a generic dataset from `(cluster_label, row)` pairs,
    /// keeping only the listed attributes.
    pub fn dataset_from_labeled_rows<'a, I>(rows: I, attrs: &[AttrId]) -> Dataset
    where
        I: IntoIterator<Item = (usize, &'a Row)>,
    {
        let names = attrs.iter().map(|&a| SCHEMA[a].name.to_owned()).collect();
        let mut data = Dataset::new(names);
        for (cluster, row) in rows {
            let values = attrs.iter().map(|&a| row.get(a).trim().to_owned()).collect();
            data.push(values, cluster);
        }
        data
    }

    /// Convert a customized dataset (NC1/NC2/NC3) into a generic
    /// dataset restricted to the given attributes.
    pub fn dataset_from_custom(custom: &CustomDataset, attrs: &[AttrId]) -> Dataset {
        dataset_from_labeled_rows(custom.labeled_records(), attrs)
    }

    /// Convert an entire cluster store into a generic dataset (cluster
    /// labels are assigned per NCID, in store order).
    pub fn dataset_from_store(store: &ClusterStore, attrs: &[AttrId]) -> Dataset {
        let names = attrs.iter().map(|&a| SCHEMA[a].name.to_owned()).collect();
        let mut data = Dataset::new(names);
        for (label, (ncid, _)) in store.cluster_ids().iter().enumerate() {
            for row in store.cluster_rows(ncid) {
                let values = attrs.iter().map(|&a| row.get(a).trim().to_owned()).collect();
                data.push(values, label);
            }
        }
        data
    }

    /// Attribute-index positions of the three name attributes within an
    /// `attrs` projection — the matcher's 1:1 name group.
    pub fn name_group_positions(attrs: &[AttrId]) -> Vec<usize> {
        use nc_votergen::schema::{FIRST_NAME, LAST_NAME, MIDL_NAME};
        attrs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == FIRST_NAME || a == MIDL_NAME || a == LAST_NAME)
            .map(|(i, _)| i)
            .collect()
    }

    /// The Table-4 analysis configuration for NC-schema datasets
    /// projected onto `attrs`: age range checks, alphabetic name
    /// attributes and the confusable name-attribute pairs.
    ///
    /// Code-book attributes (sex/race/ethnicity codes, state codes,
    /// flags) are excluded from the analysis: their domains are single
    /// letters by design, which would flood the abbreviation detector
    /// with false positives.
    pub fn nc_analysis_config(attrs: &[AttrId]) -> nc_analysis::report::AnalysisConfig {
        use nc_votergen::schema::{
            AGE, BIRTH_PLACE, DRIVERS_LIC, ETHNIC_CODE, FIRST_NAME, LAST_NAME, MAIL_STATE,
            MIDL_NAME, RACE_CODE, RES_STATE, SEX_CODE,
        };
        let pos = |target: AttrId| attrs.iter().position(|&a| a == target);
        let code_attrs = [SEX_CODE, RACE_CODE, ETHNIC_CODE, RES_STATE, MAIL_STATE, DRIVERS_LIC];
        let analyzed_attrs: Vec<usize> = attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| !code_attrs.contains(a))
            .map(|(i, _)| i)
            .collect();
        let mut numeric_ranges = Vec::new();
        if let Some(i) = pos(AGE) {
            numeric_ranges.push((i, 17, 110));
        }
        let alpha_attrs: Vec<usize> = [FIRST_NAME, MIDL_NAME, LAST_NAME, BIRTH_PLACE]
            .iter()
            .filter_map(|&a| pos(a))
            .collect();
        let name_pos: Vec<usize> = [FIRST_NAME, MIDL_NAME, LAST_NAME]
            .iter()
            .filter_map(|&a| pos(a))
            .collect();
        let mut confusable_pairs = Vec::new();
        for i in 0..name_pos.len() {
            for j in (i + 1)..name_pos.len() {
                confusable_pairs.push((name_pos[i], name_pos[j]));
            }
        }
        nc_analysis::report::AnalysisConfig {
            singleton: nc_analysis::singleton::SingletonConfig {
                numeric_ranges,
                alpha_attrs,
            },
            confusable_pairs,
            analyzed_attrs,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bridge;
    use nc_core::heterogeneity::Scope;
    use nc_votergen::schema::{AGE, FIRST_NAME, LAST_NAME, MIDL_NAME, NCID, Row};

    #[test]
    fn labeled_rows_round_trip() {
        let mut r = Row::empty();
        r.set(NCID, "A1");
        r.set(FIRST_NAME, " MARY ");
        r.set(LAST_NAME, "SMITH");
        let attrs = vec![FIRST_NAME, LAST_NAME];
        let data = bridge::dataset_from_labeled_rows([(3usize, &r)], &attrs);
        assert_eq!(data.len(), 1);
        assert_eq!(data.attr_names, vec!["first_name", "last_name"]);
        assert_eq!(data.records[0].values, vec!["MARY", "SMITH"]);
        assert_eq!(data.records[0].cluster, 3);
    }

    #[test]
    fn name_group_positions_found() {
        let attrs = Scope::Person.attrs();
        let group = bridge::name_group_positions(attrs);
        assert_eq!(group.len(), 3);
        for &g in &group {
            let a = attrs[g];
            assert!(a == FIRST_NAME || a == MIDL_NAME || a == LAST_NAME);
        }
    }

    #[test]
    fn analysis_config_maps_projected_indices() {
        let attrs = vec![FIRST_NAME, MIDL_NAME, LAST_NAME, AGE];
        let cfg = bridge::nc_analysis_config(&attrs);
        assert_eq!(cfg.singleton.numeric_ranges, vec![(3, 17, 110)]);
        assert_eq!(cfg.singleton.alpha_attrs, vec![0, 1, 2]);
        assert_eq!(cfg.confusable_pairs.len(), 3);
    }
}
