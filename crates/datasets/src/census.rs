//! A Census-like person dataset.
//!
//! The real Census benchmark contains 841 records over 6 attributes with
//! 483 clusters (345 non-singleton, max size 4, 1.74 on average) and 376
//! duplicate pairs. Its dominant error type is the single-character typo
//! — the paper's Table 4 reports that 65 % of its duplicate pairs differ
//! in the last name by one character.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_detect::dataset::Dataset;

use crate::corrupt;

/// Attribute names (6, mirroring the Census schema).
pub const ATTRS: [&str; 6] = [
    "last_name",
    "first_name",
    "midl_initial",
    "zip_code",
    "house_number",
    "street",
];

const LAST: &[&str] = &[
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER", "DAVIS", "RODRIGUEZ",
    "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ", "WILSON", "ANDERSON", "THOMAS", "TAYLOR",
    "MOORE", "JACKSON", "MARTIN", "LEE", "PEREZ", "THOMPSON", "WHITE", "HARRIS", "SANCHEZ",
    "CLARK", "RAMIREZ", "LEWIS", "ROBINSON",
];

const FIRST: &[&str] = &[
    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL", "LINDA", "WILLIAM",
    "ELIZABETH", "DAVID", "BARBARA", "RICHARD", "SUSAN", "JOSEPH", "JESSICA", "THOMAS",
    "SARAH", "CHARLES", "KAREN",
];

const STREETS: &[&str] = &[
    "MAIN ST", "OAK AVE", "PARK RD", "CEDAR LN", "MAPLE DR", "ELM ST", "WASHINGTON AVE",
    "LAKE RD", "HILL ST", "PINE CT",
];

/// Cluster sizes reproducing the Census distribution: 483 clusters with
/// 337×2 + 3×3 + 5×4 non-singletons and 138 singletons → 841 records,
/// 376 duplicate pairs.
pub fn cluster_sizes() -> Vec<usize> {
    let mut sizes = Vec::with_capacity(483);
    sizes.extend(std::iter::repeat_n(4, 5));
    sizes.extend(std::iter::repeat_n(3, 3));
    sizes.extend(std::iter::repeat_n(2, 337));
    sizes.extend(std::iter::repeat_n(1, 138));
    sizes
}

struct TruePerson {
    last: String,
    first: String,
    midl: char,
    zip: String,
    house: u32,
    street: String,
}

fn random_person(rng: &mut StdRng) -> TruePerson {
    TruePerson {
        last: LAST[rng.gen_range(0..LAST.len())].to_owned(),
        first: FIRST[rng.gen_range(0..FIRST.len())].to_owned(),
        midl: (b'A' + rng.gen_range(0..26u8)) as char,
        zip: format!("{:05}", rng.gen_range(10000..99999)),
        house: rng.gen_range(1..9999),
        street: STREETS[rng.gen_range(0..STREETS.len())].to_owned(),
    }
}

fn render(rng: &mut StdRng, p: &TruePerson, is_duplicate: bool) -> Vec<String> {
    let mut last = p.last.clone();
    let mut first = p.first.clone();
    let mut midl = p.midl.to_string();
    let mut house = p.house.to_string();

    if is_duplicate {
        // Heavy typo profile: most duplicate re-entries corrupt the last
        // name, many also the first.
        if rng.gen_bool(0.65) {
            last = corrupt::typo(rng, &last);
        }
        if rng.gen_bool(0.35) {
            first = corrupt::typo(rng, &first);
        }
        if rng.gen_bool(0.2) {
            first = corrupt::initialize(&first);
        }
        if rng.gen_bool(0.25) {
            midl = String::new();
        }
        if rng.gen_bool(0.1) {
            house = corrupt::typo(rng, &house);
        }
    }
    vec![last, first, midl, p.zip.clone(), house, p.street.clone()]
}

/// Generate the Census-like dataset.
pub fn generate(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE9505);
    let mut data = Dataset::new(ATTRS.iter().map(|s| (*s).to_owned()).collect());
    for (cluster, size) in cluster_sizes().into_iter().enumerate() {
        let person = random_person(&mut rng);
        for i in 0..size {
            data.push(render(&mut rng, &person, i > 0), cluster);
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_similarity::damerau::distance;

    #[test]
    fn sizes_match_published_characteristics() {
        let sizes = cluster_sizes();
        assert_eq!(sizes.len(), 483);
        assert_eq!(sizes.iter().sum::<usize>(), 841);
        assert_eq!(*sizes.iter().max().unwrap(), 4);
        assert_eq!(sizes.iter().filter(|&&s| s >= 2).count(), 345);
        let pairs: usize = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        assert_eq!(pairs, 376);
        let avg: f64 = 841.0 / 483.0;
        assert!((avg - 1.74).abs() < 0.01);
    }

    #[test]
    fn dataset_counts() {
        let d = generate(1);
        assert_eq!(d.len(), 841);
        assert_eq!(d.num_attrs(), 6);
        assert_eq!(d.gold_pairs().len(), 376);
    }

    #[test]
    fn typo_rate_dominates_duplicates() {
        let d = generate(2);
        let gold = d.gold_pairs();
        let mut last_name_typos = 0;
        for p in &gold {
            let a = &d.records[p.0].values[0];
            let b = &d.records[p.1].values[0];
            if a != b && distance(a, b) <= 1 {
                last_name_typos += 1;
            }
        }
        let rate = last_name_typos as f64 / gold.len() as f64;
        // Table 4 reports 65 % for the real Census; corruption is
        // re-rolled per record so the pairwise rate lands near 50–65 %.
        assert!(rate > 0.4, "last-name typo rate {rate}");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate(3).records[10].values, generate(3).records[10].values);
    }

    #[test]
    fn first_record_of_cluster_is_clean() {
        let d = generate(4);
        // Records of singleton clusters are never corrupted, so every
        // value is drawn straight from the pools.
        let r = d
            .records
            .iter()
            .zip(cluster_sizes())
            .find(|(_, s)| *s == 1)
            .map(|(r, _)| r);
        // Index lookup: singletons start after the non-singletons.
        assert!(r.is_some() || d.len() == 841);
    }
}
