//! A CDDB-like audio-CD dataset.
//!
//! The real CDDB benchmark contains 9,763 CD records over 7 attributes;
//! almost all clusters are singletons (9,508 clusters, only 221
//! non-singleton, 300 duplicate pairs, max size 6, 1.03 on average).
//! Duplicates differ in punctuation, casing, artist-token order
//! ("BEATLES, THE"), missing years and typos.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_detect::dataset::Dataset;

use crate::corrupt;

/// Attribute names (7, mirroring the CDDB schema).
pub const ATTRS: [&str; 7] = [
    "artist", "title", "category", "genre", "year", "tracks", "label",
];

const ARTIST_WORDS: &[&str] = &[
    "THE", "BLUE", "RED", "MIDNIGHT", "ELECTRIC", "VELVET", "SILVER", "GOLDEN", "BROKEN",
    "RISING", "FALLING", "WILD", "LONELY", "DANCING", "SCREAMING", "SILENT", "NEON", "COSMIC",
    "STONES", "BIRDS", "WOLVES", "RIDERS", "KINGS", "QUEENS", "SAINTS", "REBELS", "GHOSTS",
    "ANGELS", "TIGERS", "RAVENS",
];

const TITLE_WORDS: &[&str] = &[
    "LOVE", "NIGHT", "DAY", "DREAM", "HEART", "FIRE", "RAIN", "SUMMER", "WINTER", "ROAD",
    "HOME", "CITY", "OCEAN", "MOON", "SUN", "STAR", "SHADOW", "LIGHT", "TIME", "LIFE",
    "SONGS", "GREATEST", "HITS", "LIVE", "SESSIONS", "UNPLUGGED", "VOLUME", "COLLECTION",
];

const CATEGORIES: &[&str] = &["rock", "jazz", "classical", "blues", "country", "folk", "misc"];
const GENRES: &[&str] = &["ROCK", "JAZZ", "CLASSICAL", "BLUES", "COUNTRY", "FOLK", "POP"];
const LABELS: &[&str] = &["EMI", "COLUMBIA", "ATLANTIC", "DECCA", "VERVE", "SUBPOP", "MERGE"];

/// Cluster sizes reproducing the CDDB distribution: 9,508 clusters with
/// 194×2 + 23×3 + 2×4 + 1×5 + 1×6 non-singletons and 9,287 singletons →
/// 9,763 records, 300 duplicate pairs.
pub fn cluster_sizes() -> Vec<usize> {
    let mut sizes = Vec::with_capacity(9508);
    sizes.push(6);
    sizes.push(5);
    sizes.extend(std::iter::repeat_n(4, 2));
    sizes.extend(std::iter::repeat_n(3, 23));
    sizes.extend(std::iter::repeat_n(2, 194));
    sizes.extend(std::iter::repeat_n(1, 9287));
    sizes
}

struct TrueCd {
    artist: String,
    title: String,
    category: usize,
    year: u32,
    tracks: u32,
    label: usize,
}

fn random_cd(rng: &mut StdRng) -> TrueCd {
    let artist = {
        let n = rng.gen_range(1..=3);
        (0..n)
            .map(|_| ARTIST_WORDS[rng.gen_range(0..ARTIST_WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ")
    };
    let title = {
        let n = rng.gen_range(1..=4);
        (0..n)
            .map(|_| TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ")
    };
    TrueCd {
        artist,
        title,
        category: rng.gen_range(0..CATEGORIES.len()),
        year: rng.gen_range(1960..2005),
        tracks: rng.gen_range(6..22),
        label: rng.gen_range(0..LABELS.len()),
    }
}

fn render(rng: &mut StdRng, cd: &TrueCd, is_duplicate: bool) -> Vec<String> {
    let mut artist = cd.artist.clone();
    let mut title = cd.title.clone();
    let mut year = cd.year.to_string();

    if is_duplicate {
        // "THE X" ↔ "X, THE" style flips.
        if artist.starts_with("THE ") && rng.gen_bool(0.4) {
            artist = format!("{}, THE", &artist[4..]);
        } else if rng.gen_bool(0.25) {
            artist = corrupt::swap_tokens(rng, &artist);
        }
        if rng.gen_bool(0.35) {
            title = corrupt::title_case(&title);
        }
        if rng.gen_bool(0.3) {
            title = corrupt::repunctuate(rng, &title);
        }
        if rng.gen_bool(0.25) {
            title = corrupt::typo(rng, &title);
        }
        if rng.gen_bool(0.3) {
            year = String::new();
        }
    }
    vec![
        artist,
        title,
        CATEGORIES[cd.category].to_owned(),
        GENRES[cd.category].to_owned(),
        year,
        cd.tracks.to_string(),
        LABELS[cd.label].to_owned(),
    ]
}

/// Generate the CDDB-like dataset.
pub fn generate(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCDDB);
    let mut data = Dataset::new(ATTRS.iter().map(|s| (*s).to_owned()).collect());
    for (cluster, size) in cluster_sizes().into_iter().enumerate() {
        let cd = random_cd(&mut rng);
        for i in 0..size {
            data.push(render(&mut rng, &cd, i > 0), cluster);
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_published_characteristics() {
        let sizes = cluster_sizes();
        assert_eq!(sizes.len(), 9508);
        assert_eq!(sizes.iter().sum::<usize>(), 9763);
        assert_eq!(*sizes.iter().max().unwrap(), 6);
        assert_eq!(sizes.iter().filter(|&&s| s >= 2).count(), 221);
        let pairs: usize = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        assert_eq!(pairs, 300);
        let avg: f64 = 9763.0 / 9508.0;
        assert!((avg - 1.03).abs() < 0.01);
    }

    #[test]
    fn dataset_counts() {
        let d = generate(1);
        assert_eq!(d.len(), 9763);
        assert_eq!(d.num_attrs(), 7);
        assert_eq!(d.gold_pairs().len(), 300);
    }

    #[test]
    fn duplicates_keep_category_and_tracks() {
        let d = generate(2);
        for p in d.gold_pairs().iter().take(50) {
            let a = &d.records[p.0].values;
            let b = &d.records[p.1].values;
            assert_eq!(a[2], b[2], "category is stable");
            assert_eq!(a[5], b[5], "track count is stable");
        }
    }

    #[test]
    fn the_flip_occurs() {
        let d = generate(3);
        let flipped = d
            .records
            .iter()
            .filter(|r| r.values[0].ends_with(", THE"))
            .count();
        assert!(flipped > 0, "expected some 'X, THE' artists");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate(4).records[42].values, generate(4).records[42].values);
    }
}
