//! Synthetic stand-ins for the classic duplicate-detection benchmarks.
//!
//! The paper compares its NC datasets against three manually labeled
//! datasets from the literature (Section 6.1, Table 3): **Cora**
//! (bibliographic citations, very large clusters), **Census** (person
//! data, small clusters, heavy typos) and **CDDB** (audio CDs, almost
//! all singletons). Those datasets are license-encumbered, so this crate
//! *synthesizes* datasets matching their published characteristics —
//! record/attribute/cluster counts, cluster-size distributions and error
//! profiles — which is all the paper's experiments (Table 3, Table 4,
//! Figures 4c and 5d–f) depend on.
//!
//! Every generator is deterministic in its seed and returns an
//! [`nc_detect::dataset::Dataset`] with the gold standard attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cddb;
pub mod census;
pub mod characteristics;
pub mod cora;
pub mod corrupt;
