//! A Cora-like bibliographic dataset.
//!
//! The real Cora set contains 1,879 citation strings of 182 papers with
//! 17 attributes, very large clusters (up to 238 citations of the same
//! paper, 10.32 on average) and 64,578 duplicate pairs. Citations of the
//! same paper differ in author formatting, venue abbreviations, dropped
//! tokens, page/volume notation and typos.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_detect::dataset::Dataset;

use crate::corrupt;

/// Attribute names (17, mirroring the Cora schema).
pub const ATTRS: [&str; 17] = [
    "authors", "title", "venue", "journal", "booktitle", "volume", "pages", "year", "month",
    "publisher", "address", "editor", "institution", "note", "tech", "type", "date",
];

const AUTHOR_LAST: &[&str] = &[
    "AHA", "BREIMAN", "QUINLAN", "MITCHELL", "DIETTERICH", "KOHAVI", "FREUND", "SCHAPIRE",
    "VALIANT", "ANGLUIN", "RIVEST", "BLUM", "LITTLESTONE", "WARMUTH", "HAUSSLER", "KEARNS",
    "VAPNIK", "CORTES", "HINTON", "RUMELHART", "JORDAN", "GHAHRAMANI", "PEARL", "HECKERMAN",
];

const AUTHOR_FIRST: &[&str] = &[
    "DAVID", "LEO", "ROSS", "TOM", "THOMAS", "RON", "YOAV", "ROBERT", "LESLIE", "DANA",
    "RONALD", "AVRIM", "NICK", "MANFRED", "MICHAEL", "VLADIMIR", "CORINNA", "GEOFFREY",
];

const TITLE_WORDS: &[&str] = &[
    "LEARNING", "INDUCTION", "DECISION", "TREES", "NETWORKS", "BAYESIAN", "PROBABILISTIC",
    "REASONING", "BOOSTING", "MARGIN", "CLASSIFIERS", "GENERALIZATION", "BOUNDS", "QUERY",
    "CONCEPT", "EFFICIENT", "ALGORITHMS", "INSTANCE", "BASED", "MODELS", "NEURAL", "HIDDEN",
    "MARKOV", "FEATURE", "SELECTION", "CROSS", "VALIDATION", "ERROR", "ESTIMATION",
];

const VENUES: &[(&str, &str)] = &[
    ("MACHINE LEARNING", "ML"),
    ("ARTIFICIAL INTELLIGENCE", "AIJ"),
    ("JOURNAL OF THE ACM", "JACM"),
    ("NEURAL COMPUTATION", "NC"),
    ("INTERNATIONAL CONFERENCE ON MACHINE LEARNING", "ICML"),
    ("NATIONAL CONFERENCE ON ARTIFICIAL INTELLIGENCE", "AAAI"),
    ("COMPUTATIONAL LEARNING THEORY", "COLT"),
    ("NEURAL INFORMATION PROCESSING SYSTEMS", "NIPS"),
];

const PUBLISHERS: &[&str] = &["MORGAN KAUFMANN", "MIT PRESS", "SPRINGER", "ACM PRESS", "KLUWER"];

/// Cluster sizes reproducing Cora's distribution: 182 clusters, 1,879
/// records, max 238, ≈64.6 K duplicate pairs.
pub fn cluster_sizes() -> Vec<usize> {
    let mut sizes = vec![238, 150, 120, 100, 90, 80, 70, 60];
    // 110 mid/small non-singleton clusters summing to 907 records.
    let mut remaining = 1879 - 64 - sizes.iter().sum::<usize>();
    let mut k = 110usize;
    let mut s = 24usize;
    while k > 0 {
        // Decaying size, but never below 2 and never exceeding what is
        // left for the remaining clusters.
        let min_needed = 2 * (k - 1);
        let size = s.clamp(2, remaining.saturating_sub(min_needed).max(2));
        sizes.push(size);
        remaining -= size;
        k -= 1;
        if s > 2 && k.is_multiple_of(6) {
            s -= 1;
        }
        // Shrink faster near the tail so the sum lands exactly.
        if remaining <= 2 * k {
            s = 2;
        }
    }
    // 64 singletons.
    sizes.extend(std::iter::repeat_n(1, 64));
    debug_assert_eq!(sizes.iter().sum::<usize>(), 1879);
    debug_assert_eq!(sizes.len(), 182);
    sizes
}

/// A true paper, prior to citation-style variation.
struct Paper {
    authors: Vec<(String, String)>, // (first, last)
    title: String,
    venue: usize,
    volume: u32,
    pages: (u32, u32),
    year: u32,
    publisher: usize,
}

fn random_paper(rng: &mut StdRng) -> Paper {
    let n_authors = rng.gen_range(1..=3);
    let authors = (0..n_authors)
        .map(|_| {
            (
                AUTHOR_FIRST[rng.gen_range(0..AUTHOR_FIRST.len())].to_owned(),
                AUTHOR_LAST[rng.gen_range(0..AUTHOR_LAST.len())].to_owned(),
            )
        })
        .collect();
    let n_words = rng.gen_range(4..=8);
    let title = (0..n_words)
        .map(|_| TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ");
    let start = rng.gen_range(1..400);
    Paper {
        authors,
        title,
        venue: rng.gen_range(0..VENUES.len()),
        volume: rng.gen_range(1..40),
        pages: (start, start + rng.gen_range(5..40)),
        year: rng.gen_range(1980..2000),
        publisher: rng.gen_range(0..PUBLISHERS.len()),
    }
}

/// Render one citation of a paper with style variation and errors.
fn cite(rng: &mut StdRng, paper: &Paper) -> Vec<String> {
    let mut values = vec![String::new(); ATTRS.len()];

    // Authors: one of several common styles.
    let style = rng.gen_range(0..4u8);
    let authors = paper
        .authors
        .iter()
        .map(|(f, l)| match style {
            0 => format!("{f} {l}"),
            1 => format!("{} {l}", corrupt::initialize(f)),
            2 => format!("{l}, {}", corrupt::initialize(f)),
            _ => l.clone(),
        })
        .collect::<Vec<_>>()
        .join(match style {
            2 => "; ",
            _ => " AND ",
        });
    values[0] = authors;

    // Title with occasional corruption.
    let mut title = paper.title.clone();
    if rng.gen_bool(0.25) {
        title = corrupt::typo(rng, &title);
    }
    if rng.gen_bool(0.15) {
        title = corrupt::drop_token(rng, &title);
    }
    if rng.gen_bool(0.3) {
        title = corrupt::title_case(&title);
    }
    values[1] = title;

    // Venue: full name, abbreviation, or split into journal/booktitle.
    let (full, abbr) = VENUES[paper.venue];
    match rng.gen_range(0..4u8) {
        0 => values[2] = full.to_owned(),
        1 => values[2] = abbr.to_owned(),
        2 => values[3] = full.to_owned(),       // journal
        _ => values[4] = format!("PROCEEDINGS OF {full}"), // booktitle
    }

    if rng.gen_bool(0.7) {
        values[5] = paper.volume.to_string();
    }
    if rng.gen_bool(0.8) {
        values[6] = match rng.gen_range(0..3u8) {
            0 => format!("{}-{}", paper.pages.0, paper.pages.1),
            1 => format!("PP. {}-{}", paper.pages.0, paper.pages.1),
            _ => format!("PAGES {} TO {}", paper.pages.0, paper.pages.1),
        };
    }
    // Year: occasionally wrong by one (citation errors are common).
    let year = if rng.gen_bool(0.05) {
        paper.year + rng.gen_range(0..2) * 2 - 1
    } else {
        paper.year
    };
    values[7] = year.to_string();
    if rng.gen_bool(0.2) {
        values[8] = ["JAN", "MAR", "JUN", "SEP", "DEC"][rng.gen_range(0..5)].to_owned();
    }
    if rng.gen_bool(0.5) {
        values[9] = PUBLISHERS[paper.publisher].to_owned();
    }
    if rng.gen_bool(0.15) {
        values[13] = "TO APPEAR".to_owned(); // note
    }
    if rng.gen_bool(0.1) {
        values[16] = format!("{year}");
    }
    values
}

/// Generate the Cora-like dataset.
pub fn generate(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC04A);
    let mut data = Dataset::new(ATTRS.iter().map(|s| (*s).to_owned()).collect());
    for (cluster, size) in cluster_sizes().into_iter().enumerate() {
        let paper = random_paper(&mut rng);
        for _ in 0..size {
            data.push(cite(&mut rng, &paper), cluster);
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_published_characteristics() {
        let sizes = cluster_sizes();
        assert_eq!(sizes.len(), 182);
        assert_eq!(sizes.iter().sum::<usize>(), 1879);
        assert_eq!(*sizes.iter().max().unwrap(), 238);
        let non_singleton = sizes.iter().filter(|&&s| s >= 2).count();
        assert_eq!(non_singleton, 118);
        let pairs: usize = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        // Published: 64,578 — the synthetic distribution lands within 15%.
        assert!(
            (pairs as f64 - 64578.0).abs() / 64578.0 < 0.15,
            "pairs = {pairs}"
        );
    }

    #[test]
    fn dataset_counts() {
        let d = generate(1);
        assert_eq!(d.len(), 1879);
        assert_eq!(d.num_attrs(), 17);
        let gold = d.gold_pairs();
        assert!(gold.len() > 50_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.records[0].values, b.records[0].values);
        let c = generate(8);
        assert_ne!(
            a.records.iter().map(|r| &r.values).collect::<Vec<_>>(),
            c.records.iter().map(|r| &r.values).collect::<Vec<_>>()
        );
    }

    #[test]
    fn citations_of_one_paper_share_the_year_mostly() {
        let d = generate(2);
        // Take the biggest cluster and check years cluster tightly.
        let years: Vec<i32> = d
            .records
            .iter()
            .filter(|r| r.cluster == 0)
            .filter_map(|r| r.values[7].parse().ok())
            .collect();
        assert!(!years.is_empty());
        let min = years.iter().min().unwrap();
        let max = years.iter().max().unwrap();
        assert!(max - min <= 2, "years spread too far: {min}..{max}");
    }

    #[test]
    fn records_are_sparse_like_citations() {
        let d = generate(3);
        let empty_frac: f64 = d
            .records
            .iter()
            .map(|r| r.values.iter().filter(|v| v.is_empty()).count() as f64 / 17.0)
            .sum::<f64>()
            / d.len() as f64;
        assert!(empty_frac > 0.3, "citations should be sparse: {empty_frac}");
    }
}
