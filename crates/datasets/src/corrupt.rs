//! Shared corruption helpers for the comparator generators.
//!
//! These mirror the error classes of the original datasets: citation
//! strings accumulate abbreviations and token drops, census records are
//! dominated by typos, CD titles differ in punctuation and casing.

use rand::Rng;

const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Apply a single random character typo (substitute/delete/insert/
/// transpose). Strings shorter than two characters pass through.
pub fn typo<R: Rng>(rng: &mut R, s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    match rng.gen_range(0..4u8) {
        0 => {
            let i = rng.gen_range(0..chars.len());
            chars[i] = ALPHABET[rng.gen_range(0..ALPHABET.len())] as char;
        }
        1 => {
            let i = rng.gen_range(0..chars.len());
            chars.remove(i);
        }
        2 => {
            let i = rng.gen_range(0..=chars.len());
            chars.insert(i, ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
        }
        _ => {
            let i = rng.gen_range(0..chars.len() - 1);
            chars.swap(i, i + 1);
        }
    }
    chars.into_iter().collect()
}

/// Abbreviate every token of a phrase to its first letter with a dot
/// (`COMPUTER SCIENCE` → `C. S.`).
pub fn abbreviate_tokens(s: &str) -> String {
    s.split_whitespace()
        .filter_map(|t| t.chars().next())
        .map(|c| format!("{c}."))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Drop one random token from a phrase (no-op on single-token strings).
pub fn drop_token<R: Rng>(rng: &mut R, s: &str) -> String {
    let toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() < 2 {
        return s.to_owned();
    }
    let drop = rng.gen_range(0..toks.len());
    toks.iter()
        .enumerate()
        .filter(|(i, _)| *i != drop)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Swap two adjacent tokens (token transposition).
pub fn swap_tokens<R: Rng>(rng: &mut R, s: &str) -> String {
    let mut toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..toks.len() - 1);
    toks.swap(i, i + 1);
    toks.join(" ")
}

/// Re-punctuate: replace spaces with a random separator style.
pub fn repunctuate<R: Rng>(rng: &mut R, s: &str) -> String {
    let sep = [" ", "-", ", ", " / "][rng.gen_range(0..4)];
    s.split_whitespace().collect::<Vec<_>>().join(sep)
}

/// Title-case a phrase (`THE WALL` → `The Wall`).
pub fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|t| {
            let mut cs = t.chars();
            match cs.next() {
                Some(first) => {
                    first.to_uppercase().collect::<String>()
                        + &cs.as_str().to_lowercase()
                }
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Initialize a first name (`DANIEL` → `D.`).
pub fn initialize(s: &str) -> String {
    match s.chars().next() {
        Some(c) => format!("{c}."),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn typo_is_single_edit() {
        let mut r = rng();
        for _ in 0..50 {
            let out = typo(&mut r, "CITATION");
            assert!(nc_similarity::damerau::distance("CITATION", &out) <= 1);
        }
        assert_eq!(typo(&mut r, "A"), "A");
    }

    #[test]
    fn abbreviation() {
        assert_eq!(abbreviate_tokens("COMPUTER SCIENCE DEPT"), "C. S. D.");
        assert_eq!(abbreviate_tokens(""), "");
    }

    #[test]
    fn token_ops() {
        let mut r = rng();
        let dropped = drop_token(&mut r, "A B C");
        assert_eq!(dropped.split_whitespace().count(), 2);
        assert_eq!(drop_token(&mut r, "SOLO"), "SOLO");

        let swapped = swap_tokens(&mut r, "A B");
        assert_eq!(swapped, "B A");
        assert_eq!(swap_tokens(&mut r, "SOLO"), "SOLO");
    }

    #[test]
    fn punctuation_and_case() {
        let mut r = rng();
        let p = repunctuate(&mut r, "DARK SIDE");
        assert!(p.contains("DARK") && p.contains("SIDE"));
        assert_eq!(title_case("THE DARK SIDE"), "The Dark Side");
        assert_eq!(initialize("DANIEL"), "D.");
        assert_eq!(initialize(""), "");
    }
}
