//! Dataset characteristics (Table 3) and a schema-generic heterogeneity
//! measure.
//!
//! The paper scores the heterogeneity of Cora/Census/CDDB "with the same
//! settings" as for the NC data: the mean of {cased, lowercased} ×
//! {Damerau–Levenshtein, Monge–Elkan} value comparisons, attributes
//! weighted by entropy computed from one record per cluster.

use std::collections::HashSet;

use nc_detect::dataset::{Dataset, Record};
use nc_similarity::damerau::DamerauLevenshtein;
use nc_similarity::entropy::{normalize_weights, EntropyAccumulator};
use nc_similarity::monge_elkan::MongeElkan;
use nc_similarity::StringSimilarity;

/// Schema-generic heterogeneity scorer over [`Dataset`] records.
#[derive(Debug, Clone)]
pub struct GenericHeterogeneity {
    weights: Vec<f64>,
    damerau: DamerauLevenshtein,
    monge_elkan: MongeElkan<DamerauLevenshtein>,
}

impl GenericHeterogeneity {
    /// Entropy-weighted scorer; weights computed from one record per
    /// cluster.
    pub fn for_dataset(data: &Dataset) -> Self {
        let mut seen = HashSet::new();
        let mut accs: Vec<EntropyAccumulator> = (0..data.num_attrs())
            .map(|_| EntropyAccumulator::new())
            .collect();
        for r in &data.records {
            if seen.insert(r.cluster) {
                for (k, v) in r.values.iter().enumerate() {
                    accs[k].observe(v.trim());
                }
            }
        }
        let entropies: Vec<f64> = accs.iter().map(EntropyAccumulator::entropy).collect();
        GenericHeterogeneity {
            weights: normalize_weights(&entropies),
            damerau: DamerauLevenshtein::new(),
            monge_elkan: MongeElkan::new(DamerauLevenshtein::new()),
        }
    }

    /// The four-way value similarity (Section 6.3).
    pub fn value_similarity(&self, a: &str, b: &str) -> f64 {
        let (a, b) = (a.trim(), b.trim());
        if a == b {
            return 1.0;
        }
        let (la, lb) = (a.to_lowercase(), b.to_lowercase());
        (self.damerau.sim(a, b)
            + self.damerau.sim(&la, &lb)
            + self.monge_elkan.sim(a, b)
            + self.monge_elkan.sim(&la, &lb))
            / 4.0
    }

    /// Pairwise record heterogeneity in `[0, 1]`.
    pub fn pair(&self, a: &Record, b: &Record) -> f64 {
        let mut acc = 0.0;
        let mut total_w = 0.0;
        for (k, &w) in self.weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let (x, y) = (a.values[k].trim(), b.values[k].trim());
            let sim = if x.is_empty() && y.is_empty() {
                1.0
            } else {
                self.value_similarity(x, y)
            };
            acc += w * (1.0 - sim);
            total_w += w;
        }
        if total_w == 0.0 {
            0.0
        } else {
            acc / total_w
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Characteristics {
    /// Dataset label.
    pub name: String,
    /// Number of records.
    pub records: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of gold duplicate pairs.
    pub duplicate_pairs: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Number of clusters with ≥ 2 records.
    pub non_singletons: usize,
    /// Largest cluster size.
    pub max_cluster_size: usize,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Maximum pairwise heterogeneity over gold pairs.
    pub max_heterogeneity: f64,
    /// Average pairwise heterogeneity over gold pairs.
    pub avg_heterogeneity: f64,
}

/// Compute a Table 3 row for a dataset.
pub fn characteristics(name: &str, data: &Dataset) -> Characteristics {
    use std::collections::HashMap;
    let mut cluster_sizes: HashMap<usize, usize> = HashMap::new();
    for r in &data.records {
        *cluster_sizes.entry(r.cluster).or_insert(0) += 1;
    }
    let clusters = cluster_sizes.len();
    let non_singletons = cluster_sizes.values().filter(|&&s| s >= 2).count();
    let max_cluster_size = cluster_sizes.values().copied().max().unwrap_or(0);

    let gold = data.gold_pairs();
    let het = GenericHeterogeneity::for_dataset(data);
    let mut max_h: f64 = 0.0;
    let mut sum_h = 0.0;
    for p in &gold {
        let h = het.pair(&data.records[p.0], &data.records[p.1]);
        max_h = max_h.max(h);
        sum_h += h;
    }
    Characteristics {
        name: name.to_owned(),
        records: data.len(),
        attributes: data.num_attrs(),
        duplicate_pairs: gold.len(),
        clusters,
        non_singletons,
        max_cluster_size,
        avg_cluster_size: if clusters == 0 {
            0.0
        } else {
            data.len() as f64 / clusters as f64
        },
        max_heterogeneity: max_h,
        avg_heterogeneity: if gold.is_empty() { 0.0 } else { sum_h / gold.len() as f64 },
    }
}

/// All pairwise heterogeneity scores over a dataset's gold pairs
/// (Figure 4c input).
pub fn gold_pair_heterogeneities(data: &Dataset) -> Vec<f64> {
    let het = GenericHeterogeneity::for_dataset(data);
    data.gold_pairs()
        .iter()
        .map(|p| het.pair(&data.records[p.0], &data.records[p.1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_characteristics_match_table3() {
        let d = crate::census::generate(1);
        let c = characteristics("Census", &d);
        assert_eq!(c.records, 841);
        assert_eq!(c.attributes, 6);
        assert_eq!(c.duplicate_pairs, 376);
        assert_eq!(c.clusters, 483);
        assert_eq!(c.non_singletons, 345);
        assert_eq!(c.max_cluster_size, 4);
        assert!((c.avg_cluster_size - 1.74).abs() < 0.01);
        // Table 3: avg 0.15, max 0.46 — accept the same order of
        // magnitude from the synthetic generator.
        assert!(c.avg_heterogeneity > 0.03 && c.avg_heterogeneity < 0.35,
            "avg het {}", c.avg_heterogeneity);
        assert!(c.max_heterogeneity > 0.15 && c.max_heterogeneity <= 0.8,
            "max het {}", c.max_heterogeneity);
    }

    #[test]
    fn cddb_characteristics_match_table3() {
        let d = crate::cddb::generate(1);
        let c = characteristics("CDDB", &d);
        assert_eq!(c.records, 9763);
        assert_eq!(c.clusters, 9508);
        assert_eq!(c.duplicate_pairs, 300);
        assert!((c.avg_cluster_size - 1.03).abs() < 0.01);
    }

    #[test]
    fn cora_characteristics_match_table3() {
        let d = crate::cora::generate(1);
        let c = characteristics("Cora", &d);
        assert_eq!(c.records, 1879);
        assert_eq!(c.clusters, 182);
        assert_eq!(c.non_singletons, 118);
        assert_eq!(c.max_cluster_size, 238);
        assert!((c.avg_cluster_size - 10.32).abs() < 0.05);
        assert!(c.avg_heterogeneity > 0.05, "{}", c.avg_heterogeneity);
    }

    #[test]
    fn identical_records_have_zero_heterogeneity() {
        let d = crate::census::generate(2);
        let het = GenericHeterogeneity::for_dataset(&d);
        let r = &d.records[0];
        assert_eq!(het.pair(r, &r.clone()), 0.0);
    }

    #[test]
    fn heterogeneities_are_bounded() {
        let d = crate::census::generate(3);
        for h in gold_pair_heterogeneities(&d) {
            assert!((0.0..=1.0).contains(&h), "{h}");
        }
    }
}
