//! Pair-based irregularities: detectable only between two duplicate
//! records (Section 6.4).

use nc_similarity::damerau::osa_distance;
use nc_similarity::soundex::phonetic_match;
use nc_similarity::token::{same_token_multiset, strip_non_alnum};

/// Strip one trailing punctuation mark (the paper allows one at the end
/// of the shorter value in prefix/postfix checks).
fn strip_trailing_punct(s: &str) -> &str {
    s.strip_suffix(['.', ',', ';']).unwrap_or(s)
}

/// Typo: lowercase versions differ in exactly one character edit or one
/// adjacent transposition (Damerau–Levenshtein distance 1); both values
/// longer than two characters.
pub fn is_typo(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    if a.chars().count() <= 2 || b.chars().count() <= 2 {
        return false;
    }
    let la: Vec<char> = a.to_lowercase().chars().collect();
    let lb: Vec<char> = b.to_lowercase().chars().collect();
    if la == lb {
        return false;
    }
    osa_distance(&la, &lb) == 1
}

/// Phonetic error: same Soundex code, not identical after removing
/// non-letter characters, both longer than two (delegates to
/// [`nc_similarity::soundex::phonetic_match`]).
pub fn is_phonetic(a: &str, b: &str) -> bool {
    phonetic_match(a.trim(), b.trim())
}

/// Token transposition: identical token multisets in a different order.
pub fn is_token_transposition(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    if a == b {
        return false;
    }
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    if ta.len() < 2 || ta.len() != tb.len() {
        return false;
    }
    same_token_multiset(a, b)
}

/// Prefix: the shorter value (after stripping a trailing punctuation
/// mark) is a proper prefix of the longer one.
pub fn is_prefix(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    if a == b || a.is_empty() || b.is_empty() {
        return false;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let s = strip_trailing_punct(short);
    !s.is_empty() && s != long && long.starts_with(s)
}

/// Postfix: the shorter value (after stripping a trailing punctuation
/// mark) is a proper suffix of the longer one.
pub fn is_postfix(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    if a == b || a.is_empty() || b.is_empty() {
        return false;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let s = strip_trailing_punct(short);
    !s.is_empty() && s != long && long.ends_with(s)
}

/// OCR error: equal length, all differing positions involve exactly one
/// digit (digit vs letter confusion); positions where both characters
/// are digits must agree.
pub fn is_ocr_error(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    if ca.len() != cb.len() || ca == cb {
        return false;
    }
    let mut diffs = 0;
    for (x, y) in ca.iter().zip(cb.iter()) {
        if x == y {
            continue;
        }
        diffs += 1;
        match (x.is_ascii_digit(), y.is_ascii_digit()) {
            (true, false) | (false, true) => {}
            _ => return false,
        }
    }
    diffs > 0
}

/// Different representation / formatting: values differ only in
/// non-alphanumeric characters (hyphens, spaces, punctuation).
pub fn is_formatting(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    a != b && !a.is_empty() && strip_non_alnum(a) == strip_non_alnum(b) && !strip_non_alnum(a).is_empty()
}

/// Value confusion between two attributes: the records carry the same
/// two values with the attributes swapped.
pub fn is_value_confusion(a1: &str, b1: &str, a2: &str, b2: &str) -> bool {
    let (a1, b1, a2, b2) = (a1.trim(), b1.trim(), a2.trim(), b2.trim());
    !a1.is_empty() && !b1.is_empty() && a1 != b1 && a1 == b2 && b1 == a2
}

/// Integrated value: record 2 stores attribute `a`'s and `b`'s tokens
/// merged inside attribute `a`, leaving `b` empty
/// (`("MARY", "ANN")` vs `("MARY ANN", "")`).
pub fn is_integrated_value(a1: &str, b1: &str, a2: &str, b2: &str) -> bool {
    fn one_way(a1: &str, b1: &str, a2: &str, b2: &str) -> bool {
        if b2.trim().is_empty() && !b1.trim().is_empty() && !a1.trim().is_empty() {
            let merged = format!("{} {}", a1.trim(), b1.trim());
            let merged_rev = format!("{} {}", b1.trim(), a1.trim());
            let a2 = a2.trim();
            return a2 == merged || a2 == merged_rev;
        }
        false
    }
    one_way(a1, b1, a2, b2) || one_way(a2, b2, a1, b1)
}

/// Scattered values: the union of the two attributes' tokens is the
/// same in both records, but split differently — excluding plain
/// confusions and integrations, which are counted separately.
pub fn is_scattered_values(a1: &str, b1: &str, a2: &str, b2: &str) -> bool {
    let u1 = format!("{} {}", a1.trim(), b1.trim());
    let u2 = format!("{} {}", a2.trim(), b2.trim());
    if !same_token_multiset(&u1, &u2) {
        return false;
    }
    if a1.trim() == a2.trim() && b1.trim() == b2.trim() {
        return false;
    }
    !is_value_confusion(a1, b1, a2, b2) && !is_integrated_value(a1, b1, a2, b2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typos() {
        assert!(is_typo("ADELL", "ADELLE"));
        assert!(is_typo("OEHRIE", "OEHRLE"));
        assert!(is_typo("MARTHA", "MARHTA")); // transposition
        assert!(is_typo("Smith", "SMITH2") || !is_typo("Smith", "SMITH2"));
        assert!(!is_typo("ADELL", "ADELL"));
        assert!(!is_typo("AB", "AC")); // too short
        assert!(!is_typo("SMITH", "JONES")); // too far
        assert!(!is_typo("smith", "SMITH")); // case only
    }

    #[test]
    fn phonetic() {
        assert!(is_phonetic("BAILEY", "BAYLEE"));
        assert!(!is_phonetic("BAILEY", "BAILEY"));
        assert!(!is_phonetic("SMITH", "JONES"));
    }

    #[test]
    fn token_transpositions() {
        assert!(is_token_transposition("ANH THI", "THI ANH"));
        assert!(!is_token_transposition("ANH THI", "ANH THI"));
        assert!(!is_token_transposition("ANH", "THI"));
        assert!(!is_token_transposition("ANH THI", "ANH"));
    }

    #[test]
    fn prefix_postfix() {
        assert!(is_prefix("KIM", "KIMBERLY"));
        assert!(is_prefix("KIMBERLY", "KIM")); // symmetric
        assert!(is_prefix("K.", "KIM")); // trailing punctuation stripped
        assert!(!is_prefix("KIM", "KIM"));
        assert!(!is_prefix("KIM", "HAKIM"));
        assert!(is_postfix("BRAGG", "FORT BRAGG"));
        assert!(!is_postfix("BRAGG", "BRAGG"));
        assert!(!is_postfix("FORT", "FORT BRAGG"));
    }

    #[test]
    fn ocr_errors() {
        assert!(is_ocr_error("NIC0LE", "NICOLE"));
        assert!(is_ocr_error("DIC0L3", "DICOLE"));
        assert!(!is_ocr_error("NICOLE", "NICOLE"));
        assert!(!is_ocr_error("NICOLE", "NICOLA")); // letter vs letter
        assert!(!is_ocr_error("N1COLE", "NICOL")); // length mismatch
        assert!(!is_ocr_error("123", "124")); // digit vs digit must agree
    }

    #[test]
    fn formatting_differences() {
        assert!(is_formatting("MARY-ANN", "MARY ANN"));
        assert!(is_formatting("O'BRIEN", "OBRIEN"));
        assert!(is_formatting("J R S RIDGE", "JRS RIDGE"));
        assert!(!is_formatting("MARY ANN", "MARY ANN"));
        assert!(!is_formatting("MARY", "ANNE"));
        assert!(!is_formatting("---", "--"));
    }

    #[test]
    fn value_confusion() {
        assert!(is_value_confusion("JOSE", "JUAN", "JUAN", "JOSE"));
        assert!(!is_value_confusion("JOSE", "JUAN", "JOSE", "JUAN"));
        assert!(!is_value_confusion("", "JUAN", "JUAN", ""));
        assert!(!is_value_confusion("A", "A", "A", "A"));
    }

    #[test]
    fn integrated_values() {
        // (first="MARY", midl="ANN") vs (first="MARY ANN", midl="").
        assert!(is_integrated_value("MARY", "ANN", "MARY ANN", ""));
        assert!(is_integrated_value("MARY ANN", "", "MARY", "ANN"));
        assert!(is_integrated_value("MAN", "LL", "MAN LL", ""));
        assert!(!is_integrated_value("MARY", "ANN", "MARY", "ANN"));
        assert!(!is_integrated_value("MARY", "", "MARY", ""));
    }

    #[test]
    fn scattered_values() {
        // (first="AN LE", midl="MA") vs (first="AN", midl="LE MA").
        assert!(is_scattered_values("AN LE", "MA", "AN", "LE MA"));
        assert!(!is_scattered_values("AN LE", "MA", "AN LE", "MA"));
        // A pure confusion is not counted as scattered.
        assert!(!is_scattered_values("JOSE", "JUAN", "JUAN", "JOSE"));
        // A pure integration is not counted as scattered.
        assert!(!is_scattered_values("MARY", "ANN", "MARY ANN", ""));
        // Different token sets are not scattered.
        assert!(!is_scattered_values("AN LE", "MA", "AN", "LE MO"));
    }
}
