//! Singleton irregularities: detectable within one record.

/// Configuration of the singleton detectors for one dataset schema.
#[derive(Debug, Clone, Default)]
pub struct SingletonConfig {
    /// `(attribute index, lo, hi)`: numeric attributes with their valid
    /// ranges (e.g. age ∈ [17, 110]). Values outside — or unparseable
    /// values containing digits — are outliers.
    pub numeric_ranges: Vec<(usize, i64, i64)>,
    /// Attribute indices whose values should consist of letters (and
    /// common name punctuation); a digit there is an outlier.
    pub alpha_attrs: Vec<usize>,
}

/// Whether a value counts as missing: null-ish or an explicit
/// missing-information marker.
pub fn is_missing(value: &str) -> bool {
    let v = value.trim();
    v.is_empty()
        || v == "-"
        || v.eq_ignore_ascii_case("null")
        || v.eq_ignore_ascii_case("unknown")
        || v.eq_ignore_ascii_case("n/a")
        || v.eq_ignore_ascii_case("none")
}

/// Whether a value is an abbreviation: a single letter, possibly
/// followed by a punctuation mark.
pub fn is_abbreviation(value: &str) -> bool {
    let v = value.trim();
    let mut chars = v.chars();
    match (chars.next(), chars.next(), chars.next()) {
        (Some(c), None, None) => c.is_alphabetic(),
        (Some(c), Some(p), None) => c.is_alphabetic() && matches!(p, '.' | ',' | ';'),
        _ => false,
    }
}

/// Whether a value is an outlier for the given attribute under the
/// config (out-of-range numeric, or an unusual character for the
/// domain).
pub fn is_outlier(config: &SingletonConfig, attr: usize, value: &str) -> bool {
    let v = value.trim();
    if v.is_empty() {
        return false;
    }
    for &(a, lo, hi) in &config.numeric_ranges {
        if a == attr {
            return match v.parse::<i64>() {
                Ok(x) => x < lo || x > hi,
                // A numeric attribute that does not parse is an outlier.
                Err(_) => true,
            };
        }
    }
    if config.alpha_attrs.contains(&attr) {
        // Unusual characters for a name-like domain (the paper's
        // example: the first name 'X ÆA-12').
        return v
            .chars()
            .any(|c| !(c.is_alphabetic() || c.is_whitespace() || matches!(c, '\'' | '-' | '.' | ',')));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_markers() {
        for v in ["", "  ", "-", "null", "NULL", "unknown", "N/A", "none"] {
            assert!(is_missing(v), "{v:?}");
        }
        for v in ["A", "0", "SMITH"] {
            assert!(!is_missing(v), "{v:?}");
        }
    }

    #[test]
    fn abbreviations() {
        for v in ["A", "A.", "b", "J,", " K. "] {
            assert!(is_abbreviation(v), "{v:?}");
        }
        for v in ["", "AB", "A.B", "4", "4.", ".."] {
            assert!(!is_abbreviation(v), "{v:?}");
        }
    }

    #[test]
    fn numeric_outliers() {
        let cfg = SingletonConfig {
            numeric_ranges: vec![(0, 17, 110)],
            alpha_attrs: vec![],
        };
        assert!(is_outlier(&cfg, 0, "5069"));
        assert!(is_outlier(&cfg, 0, "0"));
        assert!(is_outlier(&cfg, 0, "999"));
        assert!(is_outlier(&cfg, 0, "4X")); // unparseable numeric
        assert!(!is_outlier(&cfg, 0, "44"));
        assert!(!is_outlier(&cfg, 0, "110"));
        assert!(!is_outlier(&cfg, 0, "")); // missing is not an outlier
        // Unconfigured attribute: never an outlier.
        assert!(!is_outlier(&cfg, 1, "5069"));
    }

    #[test]
    fn alpha_outliers() {
        let cfg = SingletonConfig {
            numeric_ranges: vec![],
            alpha_attrs: vec![2],
        };
        assert!(is_outlier(&cfg, 2, "X ÆA-12"));
        assert!(is_outlier(&cfg, 2, "NIC0LE"));
        assert!(!is_outlier(&cfg, 2, "O'BRIEN"));
        assert!(!is_outlier(&cfg, 2, "MARY-ANN"));
        assert!(!is_outlier(&cfg, 2, "ST. JOHN"));
    }
}
