//! Assembling the Table 4 error profile of a dataset.

use std::collections::HashMap;

use nc_detect::dataset::{Dataset, Pair};

use crate::pairwise;
use crate::singleton::{self, SingletonConfig};

/// The thirteen irregularity types of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorType {
    /// Out-of-range or domain-foreign value.
    Outlier,
    /// Single-letter value.
    Abbreviation,
    /// Missing value.
    Missing,
    /// One-edit difference.
    Typo,
    /// Digit/letter confusion.
    OcrError,
    /// Same Soundex, different spelling.
    Phonetic,
    /// One value is a prefix of the other.
    Prefix,
    /// One value is a suffix of the other.
    Postfix,
    /// Difference only in non-alphanumeric characters.
    Formatting,
    /// Same tokens, different order.
    TokenTransposition,
    /// Values swapped between two attributes.
    ValueConfusion,
    /// One attribute's value merged into another.
    IntegratedValue,
    /// Tokens split differently across two attributes.
    ScatteredValues,
}

impl ErrorType {
    /// All types, in Table 4 order.
    pub const ALL: [ErrorType; 13] = [
        ErrorType::Outlier,
        ErrorType::Abbreviation,
        ErrorType::Missing,
        ErrorType::Typo,
        ErrorType::OcrError,
        ErrorType::Phonetic,
        ErrorType::Prefix,
        ErrorType::Postfix,
        ErrorType::Formatting,
        ErrorType::TokenTransposition,
        ErrorType::ValueConfusion,
        ErrorType::IntegratedValue,
        ErrorType::ScatteredValues,
    ];

    /// Whether the type is a singleton irregularity (vs pair-based).
    pub fn is_singleton(self) -> bool {
        matches!(
            self,
            ErrorType::Outlier | ErrorType::Abbreviation | ErrorType::Missing
        )
    }

    /// Table 4 label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorType::Outlier => "outlier",
            ErrorType::Abbreviation => "abbreviation",
            ErrorType::Missing => "missing",
            ErrorType::Typo => "typo",
            ErrorType::OcrError => "OCR-error",
            ErrorType::Phonetic => "phonetic",
            ErrorType::Prefix => "prefix",
            ErrorType::Postfix => "postfix",
            ErrorType::Formatting => "formatting",
            ErrorType::TokenTransposition => "token transp.",
            ErrorType::ValueConfusion => "value confusion",
            ErrorType::IntegratedValue => "integrated value",
            ErrorType::ScatteredValues => "scattered value",
        }
    }
}

/// Analysis configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Singleton detector configuration.
    pub singleton: SingletonConfig,
    /// Attribute index pairs checked for the multi-attribute classes
    /// (typically the combinations of the name attributes).
    pub confusable_pairs: Vec<(usize, usize)>,
    /// Attribute indices analyzed for pair-based single-attribute
    /// irregularities; empty means all attributes.
    pub analyzed_attrs: Vec<usize>,
    /// Worker threads for the pair-based scan; `0` means one per
    /// available hardware thread. Counts are summed over workers, so
    /// the profile is identical for every thread count.
    pub threads: usize,
}

/// One line of the error profile.
///
/// Following the paper's Table 4, `count` and `percentage` refer to the
/// *most common attribute* for this error type (e.g. `missing` in
/// `mail_addr1`: 58 M occurrences, 99 % of records); `total_count` sums
/// over all analyzed attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStat {
    /// The irregularity type.
    pub error_type: ErrorType,
    /// Occurrences in the most common attribute.
    pub count: u64,
    /// Occurrences summed over all analyzed attributes.
    pub total_count: u64,
    /// `count` normalized by records (singletons) or duplicate pairs
    /// (pair-based).
    pub percentage: f64,
    /// The attribute (name) where the irregularity occurs most often.
    pub most_common_attr: Option<String>,
}

/// The full Table 4 profile of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    /// Records analyzed (the singleton normalizer).
    pub records: u64,
    /// Duplicate pairs analyzed (the pair normalizer).
    pub duplicate_pairs: u64,
    /// One entry per error type, in Table 4 order.
    pub stats: Vec<ErrorStat>,
}

impl ErrorProfile {
    /// The stat for a type.
    pub fn get(&self, t: ErrorType) -> &ErrorStat {
        self.stats
            .iter()
            .find(|s| s.error_type == t)
            .expect("all types present")
    }
}

/// Per-type, per-attribute occurrence counts.
type Counts = HashMap<ErrorType, HashMap<usize, u64>>;

/// Add every count of `other` into `counts`. Addition of `u64` is
/// commutative and associative, so the merged totals are independent
/// of how the pair scan was sharded.
fn merge_counts(counts: &mut Counts, other: Counts) {
    for (t, per_attr) in other {
        let into = counts.entry(t).or_default();
        for (a, c) in per_attr {
            *into.entry(a).or_insert(0) += c;
        }
    }
}

/// Run the pair-based detectors over one shard of the gold standard.
fn scan_pairs(
    data: &Dataset,
    config: &AnalysisConfig,
    analyzed: &[usize],
    gold: &[Pair],
) -> Counts {
    let mut counts = Counts::new();
    let mut bump = |t: ErrorType, attr: usize| {
        *counts.entry(t).or_default().entry(attr).or_insert(0) += 1;
    };
    for p in gold {
        let r1 = &data.records[p.0];
        let r2 = &data.records[p.1];
        for &a in analyzed {
            let (x, y) = (r1.values[a].as_str(), r2.values[a].as_str());
            if pairwise::is_typo(x, y) {
                bump(ErrorType::Typo, a);
            }
            if pairwise::is_ocr_error(x, y) {
                bump(ErrorType::OcrError, a);
            }
            if pairwise::is_phonetic(x, y) {
                bump(ErrorType::Phonetic, a);
            }
            if pairwise::is_prefix(x, y) {
                bump(ErrorType::Prefix, a);
            }
            if pairwise::is_postfix(x, y) && !pairwise::is_prefix(x, y) {
                bump(ErrorType::Postfix, a);
            }
            if pairwise::is_formatting(x, y) {
                bump(ErrorType::Formatting, a);
            }
            if pairwise::is_token_transposition(x, y) {
                bump(ErrorType::TokenTransposition, a);
            }
        }
        for &(a, b) in &config.confusable_pairs {
            let (a1, b1) = (r1.values[a].as_str(), r1.values[b].as_str());
            let (a2, b2) = (r2.values[a].as_str(), r2.values[b].as_str());
            if pairwise::is_value_confusion(a1, b1, a2, b2) {
                bump(ErrorType::ValueConfusion, a);
            }
            if pairwise::is_integrated_value(a1, b1, a2, b2) {
                bump(ErrorType::IntegratedValue, a);
            }
            if pairwise::is_scattered_values(a1, b1, a2, b2) {
                bump(ErrorType::ScatteredValues, a);
            }
        }
    }
    counts
}

/// Run the full irregularity analysis over a labeled dataset.
///
/// The pair-based scan (the expensive part: every detector on every
/// gold pair) is sharded over [`AnalysisConfig::threads`] workers;
/// per-worker counts are summed, so the resulting profile is identical
/// for every thread count.
pub fn analyze(data: &Dataset, config: &AnalysisConfig) -> ErrorProfile {
    // counts[type][attr] = occurrences.
    let mut counts: Counts = HashMap::new();
    let mut bump = |t: ErrorType, attr: usize| {
        *counts.entry(t).or_default().entry(attr).or_insert(0) += 1;
    };

    let analyzed: Vec<usize> = if config.analyzed_attrs.is_empty() {
        (0..data.num_attrs()).collect()
    } else {
        config.analyzed_attrs.clone()
    };

    // Singletons (linear in records; not worth sharding).
    for r in &data.records {
        for &a in &analyzed {
            let v = &r.values[a];
            if singleton::is_missing(v) {
                bump(ErrorType::Missing, a);
                continue;
            }
            if singleton::is_abbreviation(v) {
                bump(ErrorType::Abbreviation, a);
            }
            if singleton::is_outlier(&config.singleton, a, v) {
                bump(ErrorType::Outlier, a);
            }
        }
    }

    // Pair-based, over the gold standard. The set is flattened for
    // sharding; the per-pair counts are summed, so the (arbitrary)
    // set iteration order does not affect the profile.
    let gold: Vec<Pair> = data.gold_pairs().into_iter().collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    }
    .min(gold.len())
    .max(1);
    if threads <= 1 {
        merge_counts(&mut counts, scan_pairs(data, config, &analyzed, &gold));
    } else {
        let shard_len = gold.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = gold
                .chunks(shard_len)
                .map(|shard| {
                    let analyzed = &analyzed;
                    scope.spawn(move |_| scan_pairs(data, config, analyzed, shard))
                })
                .collect();
            for handle in handles {
                merge_counts(&mut counts, handle.join().expect("pair-scan worker panicked"));
            }
        })
        .expect("pair-scan pool panicked");
    }

    let records = data.len() as u64;
    let pairs = gold.len() as u64;
    let stats = ErrorType::ALL
        .iter()
        .map(|&t| {
            let per_attr = counts.remove(&t).unwrap_or_default();
            let total_count: u64 = per_attr.values().sum();
            let top = per_attr.iter().max_by_key(|(_, &c)| c);
            let count = top.map_or(0, |(_, &c)| c);
            let most_common_attr = top.map(|(&a, _)| data.attr_names[a].clone());
            let denom = if t.is_singleton() { records } else { pairs };
            ErrorStat {
                error_type: t,
                count,
                total_count,
                percentage: if denom == 0 {
                    0.0
                } else {
                    count as f64 / denom as f64
                },
                most_common_attr,
            }
        })
        .collect();

    ErrorProfile {
        records,
        duplicate_pairs: pairs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hand-built dataset with one instance of several error
    /// types: attributes (first, midl, last, age).
    fn fixture() -> (Dataset, AnalysisConfig) {
        let mut d = Dataset::new(vec![
            "first".into(),
            "midl".into(),
            "last".into(),
            "age".into(),
        ]);
        // Cluster 0: typo in last, abbreviation in midl of r1.
        d.push(vec!["MARY".into(), "ANN".into(), "SMITH".into(), "40".into()], 0);
        d.push(vec!["MARY".into(), "A.".into(), "SMYTH".into(), "41".into()], 0);
        // Cluster 1: value confusion first/last + missing midl + outlier age.
        d.push(vec!["JOSE".into(), "".into(), "JUAN".into(), "5069".into()], 1);
        d.push(vec!["JUAN".into(), "".into(), "JOSE".into(), "33".into()], 1);
        // Cluster 2: integrated midl, OCR error in last.
        d.push(vec!["MARY ANN".into(), "".into(), "NICOLE".into(), "50".into()], 2);
        d.push(vec!["MARY".into(), "ANN".into(), "NIC0LE".into(), "50".into()], 2);
        // Singleton cluster.
        d.push(vec!["PAT".into(), "unknown".into(), "JONES".into(), "29".into()], 3);
        let cfg = AnalysisConfig {
            singleton: SingletonConfig {
                numeric_ranges: vec![(3, 17, 110)],
                alpha_attrs: vec![0, 1, 2],
            },
            confusable_pairs: vec![(0, 1), (0, 2), (1, 2)],
            analyzed_attrs: vec![],
            threads: 0,
        };
        (d, cfg)
    }

    #[test]
    fn profile_counts_each_type() {
        let (d, cfg) = fixture();
        let profile = analyze(&d, &cfg);
        assert_eq!(profile.records, 7);
        assert_eq!(profile.duplicate_pairs, 3);
        assert!(profile.get(ErrorType::Typo).count >= 1);
        assert_eq!(profile.get(ErrorType::ValueConfusion).count, 1);
        assert_eq!(profile.get(ErrorType::IntegratedValue).count, 1);
        assert!(profile.get(ErrorType::Abbreviation).count >= 1);
        assert!(profile.get(ErrorType::Missing).total_count >= 3, "two empty midl + 'unknown'");
        // Two outliers in total: the age 5069 and the digit in NIC0LE
        // (types overlap, as the paper notes); one per attribute.
        assert_eq!(profile.get(ErrorType::Outlier).total_count, 2);
        assert_eq!(profile.get(ErrorType::Outlier).count, 1);
        assert_eq!(profile.get(ErrorType::OcrError).count, 1);
    }

    #[test]
    fn most_common_attribute_is_reported() {
        let (d, cfg) = fixture();
        let profile = analyze(&d, &cfg);
        assert_eq!(
            profile.get(ErrorType::Missing).most_common_attr.as_deref(),
            Some("midl")
        );
        assert_eq!(
            profile.get(ErrorType::Typo).most_common_attr.as_deref(),
            Some("last")
        );
    }

    #[test]
    fn percentages_use_correct_normalizers() {
        let (d, cfg) = fixture();
        let profile = analyze(&d, &cfg);
        let outlier = profile.get(ErrorType::Outlier);
        assert!((outlier.percentage - 1.0 / 7.0).abs() < 1e-12);
        let confusion = profile.get(ErrorType::ValueConfusion);
        assert!((confusion.percentage - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_yields_zero_profile() {
        let d = Dataset::new(vec!["a".into()]);
        let profile = analyze(&d, &AnalysisConfig::default());
        assert_eq!(profile.records, 0);
        for s in &profile.stats {
            assert_eq!(s.count, 0);
            assert_eq!(s.total_count, 0);
            assert_eq!(s.percentage, 0.0);
        }
    }

    #[test]
    fn profile_is_thread_count_invariant() {
        let (d, cfg) = fixture();
        let base = analyze(&d, &AnalysisConfig { threads: 1, ..cfg.clone() });
        for threads in [2, 3, 8] {
            let par = analyze(&d, &AnalysisConfig { threads, ..cfg.clone() });
            assert_eq!(base.records, par.records);
            assert_eq!(base.duplicate_pairs, par.duplicate_pairs);
            for (s, p) in base.stats.iter().zip(&par.stats) {
                assert_eq!(s.error_type, p.error_type);
                // The max count is well-defined even when the argmax
                // attribute is tied, so compare counts, not attrs.
                assert_eq!(s.count, p.count);
                assert_eq!(s.total_count, p.total_count);
                assert_eq!(s.percentage.to_bits(), p.percentage.to_bits());
            }
        }
    }

    #[test]
    fn labels_and_partition() {
        assert_eq!(ErrorType::ALL.len(), 13);
        let singles = ErrorType::ALL.iter().filter(|t| t.is_singleton()).count();
        assert_eq!(singles, 3);
        assert_eq!(ErrorType::Typo.label(), "typo");
    }
}
