//! Error-diversity analysis (Section 6.4, Table 4).
//!
//! The paper measures how many irregularities of each type a test
//! dataset contains, distinguishing *singleton* irregularities (visible
//! in one record: outliers, abbreviations, missing values) from
//! *pair-based* irregularities (visible only between two duplicate
//! records: typos, OCR and phonetic errors, prefix/postfix truncations,
//! formatting differences, token transpositions and the multi-attribute
//! classes value confusion / integrated value / scattered values).
//!
//! Detectors run over the schema-agnostic
//! [`nc_detect::dataset::Dataset`], so the same analysis applies to the
//! NC data and to the Cora/Census comparators, exactly as in Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pairwise;
pub mod report;
pub mod singleton;
