#!/usr/bin/env bash
# Carve-by-query benchmark: builds the release binary, plans and
# executes a selective indexed query over a ≥100k-record store both
# ways (indexed vs forced scan), measures warm-cache query-carve
# latency, and writes BENCH_query.json in the repo root. The binary
# asserts the plan never full-scans, both paths are byte-identical and
# the indexed path clears the --min-speedup gate. Any extra arguments
# are passed through (e.g. --pop 50000 --min-speedup 4).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_query
exec target/release/bench_query --out BENCH_query.json "$@"
