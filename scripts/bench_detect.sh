#!/usr/bin/env bash
# Candidate-generation scaling benchmark: builds the release binary,
# measures the indexed blocking pipeline against the multi-pass
# Sorted-Neighborhood baseline on votergen record prefixes of
# 10k/100k/1M, asserts the parallel probe bit-identical to the
# sequential one, and writes BENCH_detect.json in the repo root. Any
# extra arguments are passed through (e.g. --scales 10000,50000
# --cap 256).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_detect
exec target/release/bench_detect --out BENCH_detect.json "$@"
