#!/usr/bin/env bash
# The full local CI gate: release build, test suite, lint.
#
#   ./scripts/ci.sh
#
# Any extra arguments are forwarded to every cargo invocation (e.g.
# --offline when a vendored registry is available).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace "$@"

echo "=== test ==="
cargo test -q --workspace "$@"

echo "=== shard smoke ==="
# Tiny-parameter pass through the shard benchmark: in-memory fan-out,
# WAL-backed archive ingest, publish and a clean replay — the binary
# asserts each stage and exits non-zero on any failure.
cargo run --release -q -p nc-bench --bin bench_shard "$@" -- \
    --pop 200 --snapshots 3 --shards 3 --reps 1 \
    --out target/BENCH_shard_smoke.json > /dev/null

echo "=== stream smoke ==="
# Tiny-parameter pass through the change-stream benchmark: WAL-tailing
# change stream, dirty-only incremental re-scoring (bit-identity
# asserted every repetition) and delta-aware carve-cache publishes —
# the binary exits non-zero on any drift.
cargo run --release -q -p nc-bench --bin bench_stream "$@" -- \
    --pop 300 --snapshots 2 --shards 2 --reps 1 --publishes 1 \
    --out target/BENCH_stream_smoke.json > /dev/null

echo "=== detect smoke ==="
# Tiny-parameter pass through the candidate-generation benchmark:
# indexed pipeline vs the SNM baseline on two scales — the binary
# asserts the parallel probe bit-identical to the sequential one and
# exits non-zero on any failure.
cargo run --release -q -p nc-bench --bin bench_detect "$@" -- \
    --scales 2000,4000 --pop 1000 --reps 1 \
    --out target/BENCH_detect_smoke.json > /dev/null

echo "=== fault sweep smoke ==="
# Bounded syscall-fault sweep: crash the shard engine's commit sequence
# at every 5th mutating syscall and run a handful of seeded chaos
# schedules — the binary asserts every crash point recovers to the pre-
# or post-commit state (never a third) and exits non-zero otherwise.
cargo run --release -q -p nc-bench --bin bench_faults "$@" -- \
    --pop 100 --shards 2 --stride 5 --chaos-runs 12 \
    --out target/BENCH_faults_smoke.json > /dev/null

echo "=== query smoke ==="
# Tiny-parameter pass through the carve-by-query benchmark: the binary
# asserts the selective query plans onto the size index (never a full
# scan), indexed and forced-scan executions are byte-identical, and
# warm-cache replays of the sampled carve match bit for bit.
cargo run --release -q -p nc-bench --bin bench_query "$@" -- \
    --pop 400 --snapshots 3 --reps 2 --min-records 1 --min-speedup 1 \
    --out target/BENCH_query_smoke.json > /dev/null

echo "=== pprl smoke ==="
# Tiny-parameter pass through the PPRL encoding benchmark: CLK encode
# determinism (re-encode spot check), encoded-vs-plaintext scoring
# cost, and measured encoded-space blocking completeness — the binary
# asserts each gate and exits non-zero on any failure. The tiny store
# is cleaner than the 100k archive, so the blocker's default geometry
# is relaxed to keep the completeness gate meaningful.
cargo run --release -q -p nc-bench --bin bench_pprl "$@" -- \
    --pop 400 --snapshots 3 --reps 1 --min-records 1 \
    --bands 32 --band-bits 14 --max-cand-per-record 50 \
    --out target/BENCH_pprl_smoke.json > /dev/null

echo "=== serve smoke ==="
# End-to-end smoke of the carving service on an ephemeral port:
# /healthz, a carved page (cold + cached), and a clean shutdown —
# the example exits non-zero if any of those fail.
cargo run --release -q -p nc-suite --example serve_datasets "$@" > /dev/null

echo "=== clippy ==="
./scripts/clippy_gate.sh "$@"

echo "=== ci green ==="
