#!/usr/bin/env bash
# The full local CI gate: release build, test suite, lint.
#
#   ./scripts/ci.sh
#
# Any extra arguments are forwarded to every cargo invocation (e.g.
# --offline when a vendored registry is available).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace "$@"

echo "=== test ==="
cargo test -q --workspace "$@"

echo "=== serve smoke ==="
# End-to-end smoke of the carving service on an ephemeral port:
# /healthz, a carved page (cold + cached), and a clean shutdown —
# the example exits non-zero if any of those fail.
cargo run --release -q -p nc-suite --example serve_datasets "$@" > /dev/null

echo "=== clippy ==="
./scripts/clippy_gate.sh "$@"

echo "=== ci green ==="
