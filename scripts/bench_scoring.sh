#!/usr/bin/env bash
# Scoring throughput benchmark: builds the release binary, runs the
# sequential-vs-parallel comparison, and writes BENCH_scoring.json in
# the repo root. Any extra arguments are passed through (e.g.
# --pop 5000 --threads 8).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_scoring
exec target/release/bench_scoring --out BENCH_scoring.json "$@"
