#!/usr/bin/env bash
# Build + test in the network-less container using the .verify stubs.
# See .verify/README.md for the expected (stub-induced) failures.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo --offline --config .verify/patch.toml build --release --workspace
cargo --offline --config .verify/patch.toml test -q --workspace --no-fail-fast
