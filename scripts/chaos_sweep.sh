#!/usr/bin/env bash
# Syscall-fault sweep: runs every offline-capable crash/fault test
# (shard engine syscall sweeps, the checkpoint write_atomic sweep, the
# FaultVfs unit tests), then the bench_faults binary — a full
# crash-at-every-syscall sweep plus seeded random chaos — and writes
# BENCH_faults.json in the repo root. Any extra arguments are passed to
# every cargo invocation (e.g. --offline --config .verify/patch.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== shard syscall sweep ==="
cargo test -q -p nc-shard --test syscall_sweep "$@"

echo "=== checkpoint atomic-write sweep ==="
cargo test -q -p nc-core "$@" -- write_atomic_crash_sweep

echo "=== fault vfs unit tests ==="
cargo test -q -p nc-vfs "$@"

echo "=== crash sweep + chaos bench ==="
cargo build --release -p nc-bench --bin bench_faults "$@"
exec target/release/bench_faults --out BENCH_faults.json
