#!/usr/bin/env bash
# Change-stream benchmark: builds the release binary, measures full vs
# dirty-only incremental re-scoring at 0.1% / 1% / 10% churn over a
# ~100k-record store (bit-identity asserted on every repetition) plus
# the warm-carve hit rate delta-aware publishes preserve, and writes
# BENCH_stream.json in the repo root. The run fails unless the
# incremental pass wins by at least 5x at 1% churn and the delta-fed
# carve cache serves at least one warm hit. Any extra arguments are
# passed through (e.g. --pop 95000 --publishes 5).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_stream
exec target/release/bench_stream --min-speedup 5 --require-hits \
    --out BENCH_stream.json "$@"
