#!/usr/bin/env bash
# Lint gate: the workspace must be clippy-clean at -D warnings.
#
# Run locally or in CI before merging:
#   ./scripts/clippy_gate.sh
#
# Any extra arguments are forwarded to cargo clippy, e.g.:
#   ./scripts/clippy_gate.sh --no-deps
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo clippy --workspace --all-targets "$@" -- -D warnings
