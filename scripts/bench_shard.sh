#!/usr/bin/env bash
# Shard-engine benchmark: builds the release binary, measures parallel
# ingest throughput (shards=1 vs N), publish latency and WAL replay
# time, and writes BENCH_shard.json in the repo root. Any extra
# arguments are passed through (e.g. --pop 5000 --shards 8).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_shard
exec target/release/bench_shard --out BENCH_shard.json "$@"
