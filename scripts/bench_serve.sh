#!/usr/bin/env bash
# Serve-layer benchmark: builds the release binary, measures cold
# (cache-miss) vs warm (cache-hit) carve latency over HTTP, and writes
# BENCH_serve.json in the repo root. Any extra arguments are passed
# through (e.g. --pop 5000 --reps 20).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_serve
exec target/release/bench_serve --out BENCH_serve.json "$@"
