#!/usr/bin/env bash
# PPRL encoding benchmark: builds the release binary, encodes a
# ≥100k-record voter archive as keyed CLKs, measures encode throughput
# and encoded-vs-plaintext scoring cost, runs bit-sampling blocking
# over the record CLKs against the within-cluster gold pairs, and
# writes BENCH_pprl.json in the repo root. The binary asserts
# re-encoding is byte-identical and that every --min-* / --max-* gate
# clears. Any extra arguments are passed through (e.g. --pop 50000
# --min-completeness 0.8 --bands 48).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nc-bench --bin bench_pprl
exec target/release/bench_pprl --out BENCH_pprl.json "$@"
