//! Detection-pipeline tests across datasets (Section 6.5).

use nc_suite::bridge;
use nc_suite::core::customize::{customize, CustomizeParams};
use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::datasets::{cddb, census};
use nc_suite::detect::blocking::{blocking_quality, Blocker, FullPairwise, SortedNeighborhood};
use nc_suite::detect::dataset::Dataset;
use nc_suite::detect::eval::{best_f1, linspace, score_candidates, threshold_sweep};
use nc_suite::detect::matcher::{MeasureKind, RecordMatcher};

fn best_f1_for(data: &Dataset, kind: MeasureKind, name_group: Vec<usize>) -> f64 {
    let blocker = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5.min(data.num_attrs())));
    let matcher = RecordMatcher::with_kind(kind, data.entropy_weights(), name_group);
    let scored = score_candidates(data, &blocker, &matcher);
    let gold = data.gold_pairs();
    let sweep = threshold_sweep(&scored, &gold, &linspace(0.3, 0.98, 35));
    best_f1(&sweep).map(|p| p.prf.f1).unwrap_or(0.0)
}

/// The Census-like comparator is dominated by single typos — every
/// measure should reach a solid F1 (the paper's Figure 5e tops out
/// around 0.8).
#[test]
fn census_detection_reaches_solid_f1() {
    let data = census::generate(1);
    for kind in MeasureKind::ALL {
        let f1 = best_f1_for(&data, kind, vec![]);
        assert!(f1 > 0.55, "{kind:?}: F1 {f1}");
    }
}

/// CDDB: almost all singletons; precision is the challenge. The sweep
/// must still find a threshold with a reasonable F1 (Figure 5f).
#[test]
fn cddb_detection_works_despite_singletons() {
    let data = cddb::generate(1);
    let f1 = best_f1_for(&data, MeasureKind::TrigramJaccard, vec![]);
    assert!(f1 > 0.4, "F1 {f1}");
}

/// Figure 5a–c: detection quality degrades from NC1 (clean) to NC3
/// (dirty).
#[test]
fn nc_bands_order_detection_quality() {
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: nc_suite::votergen::config::GeneratorConfig {
            seed: 21,
            initial_population: 900,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 14,
    });
    let firsts: Vec<_> = outcome
        .store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| outcome.store.cluster_rows(n).into_iter().next())
        .collect();
    let weights = AttributeWeights::from_rows(Scope::Person, firsts.iter());
    let scorer = HeterogeneityScorer::new(weights);
    let attrs = Scope::Person.attrs();

    let mut results = Vec::new();
    for params in [
        CustomizeParams::nc1(700, 150, 2),
        CustomizeParams::nc3(700, 150, 2),
    ] {
        let ds = customize(&outcome.store, &scorer, &params);
        let data = bridge::dataset_from_custom(&ds, attrs);
        let group = bridge::name_group_positions(attrs);
        let pairs = data.gold_pairs().len();
        results.push((best_f1_for(&data, MeasureKind::JaroWinkler, group), pairs));
    }
    let (nc1_f1, _) = results[0];
    let (nc3_f1, nc3_pairs) = results[1];
    assert!(nc1_f1 > 0.8, "NC1 should be nearly clean: {nc1_f1}");
    assert!(
        nc1_f1 >= nc3_f1 - 1e-9,
        "NC1 must not be harder than NC3: {nc1_f1} vs {nc3_f1}"
    );
    // At this archive scale the 0.4–1.0 band can be nearly empty, in
    // which case NC3 is trivially easy; the strict ordering of Figure 5
    // only applies once the band contains a meaningful pair population.
    if nc3_pairs >= 100 {
        assert!(nc1_f1 > nc3_f1, "NC1 must beat a populated NC3: {results:?}");
    }
}

/// The paper verified that multi-pass SNM with window 20 lost no true
/// duplicates on its customized data; verify the same on the Census
/// comparator, plus the reduction-ratio advantage.
#[test]
fn snm_keeps_recall_and_reduces_pairs() {
    let data = census::generate(2);
    let snm = SortedNeighborhood::multi_pass(data.top_entropy_attrs(5));
    let candidates = snm.candidates(&data);
    let quality = blocking_quality(&data, &candidates);
    assert!(
        quality.pair_completeness > 0.97,
        "completeness {}",
        quality.pair_completeness
    );
    assert!(quality.reduction_ratio > 0.5, "reduction {}", quality.reduction_ratio);

    let full = FullPairwise.candidates(&data);
    assert!(candidates.len() < full.len());
}

/// Blocking ablation: growing the SNM window can only help recall and
/// hurt reduction.
#[test]
fn snm_window_tradeoff() {
    let data = census::generate(3);
    let keys = data.top_entropy_attrs(3);
    let mut prev_candidates = 0usize;
    let mut prev_completeness = 0.0f64;
    for window in [3, 10, 30] {
        let snm = SortedNeighborhood { keys: keys.clone(), window };
        let c = snm.candidates(&data);
        let q = blocking_quality(&data, &c);
        assert!(c.len() >= prev_candidates);
        assert!(q.pair_completeness >= prev_completeness - 1e-12);
        prev_candidates = c.len();
        prev_completeness = q.pair_completeness;
    }
}

/// The 1:1 name matching should not hurt on data without confusions
/// and must help on data with them.
#[test]
fn name_group_matching_helps_on_confused_names() {
    // Build a tiny dataset with systematic first/last confusion.
    let mut data = Dataset::new(vec!["first".into(), "midl".into(), "last".into()]);
    let names = [
        ("DEBRA", "OEHRIE", "WILLIAMS"),
        ("MARTHA", "LEE", "JOHNSON"),
        ("CARL", "RAY", "OXENDINE"),
        ("JUANITA", "MAE", "LOCKLEAR"),
        ("GEOFFREY", "ALAN", "HINTON"),
        ("ROSS", "D", "QUINLAN"),
    ];
    for (i, (f, m, l)) in names.iter().enumerate() {
        data.push(vec![(*f).into(), (*m).into(), (*l).into()], i);
        // The duplicate has first/last swapped.
        data.push(vec![(*l).into(), (*m).into(), (*f).into()], i);
    }
    let gold = data.gold_pairs();

    let with_group = RecordMatcher::with_kind(
        MeasureKind::JaroWinkler,
        vec![1.0; 3],
        vec![0, 1, 2],
    );
    let without = RecordMatcher::with_kind(MeasureKind::JaroWinkler, vec![1.0; 3], vec![]);

    let scored_g = score_candidates(&data, &FullPairwise, &with_group);
    let scored_p = score_candidates(&data, &FullPairwise, &without);
    let f1_g = best_f1(&threshold_sweep(&scored_g, &gold, &linspace(0.3, 0.99, 30)))
        .unwrap()
        .prf
        .f1;
    let f1_p = best_f1(&threshold_sweep(&scored_p, &gold, &linspace(0.3, 0.99, 30)))
        .unwrap()
        .prf
        .f1;
    assert!(f1_g > f1_p, "group {f1_g} vs plain {f1_p}");
    assert!((f1_g - 1.0).abs() < 1e-9, "group matching should be perfect here");
}
