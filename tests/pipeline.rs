//! End-to-end pipeline tests: archive generation → import → dedup →
//! scoring, checking the paper's qualitative claims.

use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::plausibility::PlausibilityScorer;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::stats;
use nc_suite::votergen::config::GeneratorConfig;

fn run(policy: DedupPolicy, seed: u64) -> nc_suite::core::pipeline::GenerationOutcome {
    TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed,
            initial_population: 400,
            ..Default::default()
        },
        policy,
        snapshots: 12,
    })
}

/// Table 2's central claim: naively unioning snapshots yields mostly
/// (near-)exact duplicates, and the removal policies form a strict
/// compression hierarchy.
#[test]
fn dedup_policies_form_a_hierarchy() {
    let none = run(DedupPolicy::None, 1);
    let exact = run(DedupPolicy::Exact, 1);
    let trimmed = run(DedupPolicy::Trimmed, 1);
    let person = run(DedupPolicy::PersonData, 1);

    // Identical input archives.
    assert_eq!(none.store.rows_imported(), exact.store.rows_imported());
    assert_eq!(none.store.rows_imported(), trimmed.store.rows_imported());

    let n = none.store.record_count();
    let e = exact.store.record_count();
    let t = trimmed.store.record_count();
    let p = person.store.record_count();
    assert!(n > e, "exact dedup must remove records ({n} vs {e})");
    assert!(e > t, "trimming must remove further records ({e} vs {t})");
    assert!(t > p, "person-data dedup must remove further records ({t} vs {p})");

    // The paper reports > 60 % exact-duplicate removal; the synthetic
    // archive must reproduce that order of magnitude.
    let removal_rate = 1.0 - (e as f64 / n as f64);
    assert!(removal_rate > 0.5, "exact removal rate too low: {removal_rate}");

    // All policies agree on the number of objects (clusters).
    assert_eq!(none.store.cluster_count(), exact.store.cluster_count());
    assert_eq!(none.store.cluster_count(), person.store.cluster_count());
}

/// Table 1: the first snapshot is all-new; later snapshots contribute
/// mostly known records, with election years spiking new registrations.
#[test]
fn snapshot_statistics_shape() {
    let outcome = run(DedupPolicy::Trimmed, 2);
    let table = stats::snapshot_table(&outcome.imports);
    assert_eq!(table[0].year, 2008);
    assert!((table[0].new_record_rate() - 1.0).abs() < 1e-12);
    assert!((table[0].new_object_rate() - 1.0).abs() < 1e-12);
    // Typical later years: new-record rate drops well below 1…
    let min_later = table[1..]
        .iter()
        .map(|y| y.new_record_rate())
        .fold(1.0f64, f64::min);
    assert!(min_later < 0.6, "{min_later}");
    // …but format-drift years spike, the paper's Table 1 observation: in
    // 2014 the house-district label format changes, so every row counts
    // as a new record even though the voters did not change.
    if let Some(y2014) = table.iter().find(|y| y.year == 2014) {
        assert!(
            y2014.new_record_rate() > 0.9,
            "format drift should spike 2014: {}",
            y2014.new_record_rate()
        );
        assert!(y2014.new_object_rate() < 0.3, "mostly old voters in 2014");
    }
    // Total rows across years equals rows imported.
    let total: u64 = table.iter().map(|y| y.total_rows).sum();
    assert_eq!(total, outcome.store.rows_imported());
}

/// Figure 1: cluster sizes after trimming dedup are small and heavy at
/// the low end.
#[test]
fn cluster_size_histogram_shape() {
    let outcome = run(DedupPolicy::Trimmed, 3);
    let hist = stats::cluster_size_histogram(&outcome.store);
    let total: u64 = hist.values().sum();
    assert_eq!(total as usize, outcome.store.cluster_count());
    // Small clusters dominate.
    let small: u64 = hist.iter().filter(|(&s, _)| s <= 10).map(|(_, &c)| c).sum();
    assert!(small as f64 > total as f64 * 0.6, "small {small} of {total}");
}

/// Figure 4a: most clusters are fully plausible; the injected
/// NCID-reuse clusters fall well below.
#[test]
fn plausibility_flags_unsound_clusters() {
    // High reuse pressure so the test has unsound clusters to find.
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 4,
            initial_population: 500,
            removal_rate: 0.12,
            removed_retention_years: 1,
            ncid_reuse_rate: 0.6,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 25,
    });
    let store = &outcome.store;
    let scorer = PlausibilityScorer::new();

    let reused: Vec<&String> = outcome
        .unsound_ncids
        .iter()
        .filter(|n| store.cluster_rows(n).len() >= 2)
        .collect();
    assert!(!reused.is_empty(), "no unsound multi-record clusters generated");

    let mut unsound_scores = Vec::new();
    for ncid in &reused {
        unsound_scores.push(scorer.cluster(&store.cluster_rows(ncid)));
    }
    let avg_unsound: f64 = unsound_scores.iter().sum::<f64>() / unsound_scores.len() as f64;

    let mut sound_scores = Vec::new();
    for (ncid, _) in store.cluster_ids() {
        if !outcome.unsound_ncids.contains(&ncid) {
            let rows = store.cluster_rows(&ncid);
            if rows.len() >= 2 {
                sound_scores.push(scorer.cluster(&rows));
            }
        }
        if sound_scores.len() >= 300 {
            break;
        }
    }
    let avg_sound: f64 = sound_scores.iter().sum::<f64>() / sound_scores.len() as f64;

    assert!(
        avg_unsound < avg_sound - 0.1,
        "unsound clusters should score clearly lower: {avg_unsound} vs {avg_sound}"
    );
    assert!(avg_sound > 0.9, "sound clusters should be near 1.0: {avg_sound}");
}

/// Determinism: the whole pipeline is reproducible from the seed.
#[test]
fn pipeline_is_deterministic() {
    let a = run(DedupPolicy::Trimmed, 5);
    let b = run(DedupPolicy::Trimmed, 5);
    assert_eq!(a.store.record_count(), b.store.record_count());
    assert_eq!(a.store.cluster_count(), b.store.cluster_count());
    assert_eq!(a.imports, b.imports);
}
