//! Reproducibility tests: version reconstruction and snapshot
//! restriction over a growing dataset (Section 5).

use std::collections::HashSet;

use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::version::VersionManager;
use nc_suite::votergen::config::GeneratorConfig;

fn incremental(seed: u64, snapshots: usize) -> nc_suite::core::pipeline::GenerationOutcome {
    TestDataGenerator::run_incremental(GenerationConfig {
        generator: GeneratorConfig {
            seed,
            initial_population: 300,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    })
}

/// The dataset grows monotonically: every version's record set is a
/// subset of every later version's (Section 5.1.2).
#[test]
fn versions_grow_monotonically() {
    let outcome = incremental(1, 8);
    let history = outcome.versions.history();
    assert_eq!(history.len(), 8);
    for w in history.windows(2) {
        assert!(w[0].records_total <= w[1].records_total);
        assert!(w[0].clusters_total <= w[1].clusters_total);
    }
}

/// Reconstructing version v yields exactly the totals recorded when v
/// was published.
#[test]
fn reconstruction_matches_published_totals() {
    let outcome = incremental(2, 6);
    for v in outcome.versions.history() {
        let rec = outcome.versions.reconstruct(&outcome.store, v.number);
        let records: u64 = rec.iter().map(|(_, rows)| rows.len() as u64).sum();
        assert_eq!(records, v.records_total, "version {}", v.number);
        assert_eq!(rec.len() as u64, v.clusters_total, "version {}", v.number);
    }
}

/// Reconstructed versions are nested: every record of version v exists
/// in version v+1.
#[test]
fn reconstructed_versions_are_nested() {
    let outcome = incremental(3, 5);
    let fingerprint = |rows: &[(String, Vec<nc_suite::votergen::schema::Row>)]| -> HashSet<String> {
        rows.iter()
            .flat_map(|(ncid, rs)| {
                rs.iter()
                    .map(move |r| format!("{ncid}|{}", r.values.join("\u{1f}")))
            })
            .collect()
    };
    let mut previous: Option<HashSet<String>> = None;
    for v in 1..=5u32 {
        let cur = fingerprint(&outcome.versions.reconstruct(&outcome.store, v));
        if let Some(prev) = &previous {
            assert!(prev.is_subset(&cur), "version {} not nested", v);
        }
        previous = Some(cur);
    }
}

/// Restricting to all snapshots yields the full dataset; restricting to
/// one yields a strict subset containing every record of that snapshot.
#[test]
fn snapshot_restriction_bounds() {
    let outcome = incremental(4, 6);
    let all_dates: HashSet<String> = outcome.imports.iter().map(|s| s.date.clone()).collect();
    let full = VersionManager::restrict_to_snapshots(&outcome.store, &all_dates);
    let full_records: u64 = full.iter().map(|(_, r)| r.len() as u64).sum();
    assert_eq!(full_records, outcome.store.record_count());

    let first: HashSet<String> = [outcome.imports[0].date.clone()].into();
    let sub = VersionManager::restrict_to_snapshots(&outcome.store, &first);
    let sub_records: u64 = sub.iter().map(|(_, r)| r.len() as u64).sum();
    assert!(sub_records < full_records);
    // Every initial-population cluster appears in the first snapshot.
    assert!(sub.len() >= 300);
}

/// Per-snapshot insert counters in the cluster meta data add up to the
/// cluster's record count (the reconstruction bookkeeping of §5.1.2).
#[test]
fn snapshot_counters_are_consistent() {
    let outcome = incremental(5, 5);
    let store = &outcome.store;
    for (ncid, _) in store.cluster_ids().into_iter().take(50) {
        let doc = store.cluster_doc(&ncid).expect("cluster doc");
        let counts = doc
            .get_path("meta.snapshot_counts")
            .and_then(|v| v.as_doc())
            .expect("snapshot counts present");
        let total: i64 = counts.iter().filter_map(|(_, v)| v.as_i64()).sum();
        let records = store.cluster_rows(&ncid).len() as i64;
        assert_eq!(total, records, "cluster {ncid}");
    }
}
