//! End-to-end tests of the carving service: concurrent carves pinned to
//! a version are bit-identical to calling `customize` directly, pages
//! reassemble losslessly, the cache engages, old versions stay
//! pinnable after a publish, and shutdown is graceful.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use nc_suite::core::cluster::ClusterStore;
use nc_suite::core::customize::{customize, CustomizeParams};
use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::serve::carve::render_lines;
use nc_suite::serve::{
    PublishDelta, Server, ServerHandle, ServeConfig, ServeSnapshot, ServeState, SnapshotRegistry,
};
use nc_suite::votergen::config::GeneratorConfig;

fn build_store(seed: u64, population: usize, snapshots: usize) -> ClusterStore {
    TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed,
            initial_population: population,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots,
    })
    .store
}

/// The same scorer derivation the serve layer uses: entropy weights
/// from one record per cluster, person scope.
fn scorer_for(store: &ClusterStore) -> HeterogeneityScorer {
    let firsts: Vec<_> = store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| store.cluster_rows(n).into_iter().next())
        .collect();
    HeterogeneityScorer::new(AttributeWeights::from_rows(Scope::Person, firsts.iter()))
}

fn spawn_server(registry: SnapshotRegistry) -> (Arc<ServeState>, ServerHandle) {
    let state = Arc::new(ServeState::new(Arc::new(registry), ServeConfig::default()));
    let handle = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    (state, handle)
}

/// A minimal HTTP/1.1 response as seen by the tests.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Send one raw request and read the (Connection: close) response.
fn send(addr: SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, target: &str) -> Reply {
    send(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_form(addr: SocketAddr, target: &str, form: &str) -> Reply {
    send(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{form}",
            form.len()
        ),
    )
}

fn post_json(addr: SocketAddr, target: &str, body: &str) -> Reply {
    send(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn carve_by_query_plans_executes_and_caches() {
    let store = build_store(32, 300, 8);
    let (_state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    let q = r#"{"pipeline": [
        {"match": {"size": {"gte": 2}, "plaus": {"lt": 1.0}}},
        {"sample": {"size": 10, "seed": 7}}
    ]}"#;

    // The plan never falls back to a full scan: both conjuncts ride
    // ordered indexes.
    let explain = post_json(addr, "/carve/explain", q);
    assert_eq!(explain.status, 200, "{}", explain.body);
    assert_eq!(
        explain.header("content-type"),
        Some("application/json; charset=utf-8")
    );
    assert!(explain.body.contains("\"full_scan\":false"), "{}", explain.body);
    assert!(explain.body.contains("\"indexed-range\""), "{}", explain.body);
    assert!(explain.body.contains("\"indexed_conjuncts\":2"), "{}", explain.body);

    // Cold execution, then a byte-identical warm replay.
    let cold = post_json(addr, "/carve", q);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(cold.header("x-version"), Some("1"));
    assert!(!cold.body.is_empty(), "selective query should carve records");
    let records: usize = cold.header("x-total-records").unwrap().parse().unwrap();
    assert_eq!(cold.body.lines().count(), records);

    let warm = post_json(addr, "/carve", q);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "replay must be bit-identical");

    // A reformatted body (different key order, different whitespace)
    // canonicalizes onto the same cache entry.
    let reformatted = r#"{"pipeline":[{"match":{"plaus":{"lt":1.0},"size":{"gte":2}}},{"sample":{"seed":7,"size":10}}]}"#;
    let same = post_json(addr, "/carve", reformatted);
    assert_eq!(same.header("x-cache"), Some("hit"));
    assert_eq!(same.body, cold.body);

    // The planner counters are exported.
    let metrics = get(addr, "/metrics");
    let indexed: u64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("nc_query_conjuncts_indexed_total "))
        .expect("query counter exported")
        .parse()
        .unwrap();
    assert!(indexed >= 2, "{indexed}");

    // Document pipelines come back as canonical JSON objects.
    let count = post_json(addr, "/carve", r#"{"pipeline": [{"count": true}]}"#);
    assert_eq!(count.status, 200, "{}", count.body);
    assert_eq!(
        count.body.trim(),
        format!("{{\"count\":{}}}", store.cluster_ids().len())
    );

    // Method guard on the explain route.
    assert_eq!(get(addr, "/carve/explain").status, 405);

    handle.shutdown();
}

#[test]
fn query_errors_are_typed_json_with_positions() {
    let store = build_store(33, 200, 5);
    let (_state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    // Malformed JSON: the 400 body carries the byte offset.
    let bad_json = post_json(addr, "/carve", r#"{"pipeline": [}"#);
    assert_eq!(bad_json.status, 400, "{}", bad_json.body);
    assert_eq!(
        bad_json.header("content-type"),
        Some("application/json; charset=utf-8")
    );
    assert!(bad_json.body.contains("\"kind\":\"json\""), "{}", bad_json.body);
    assert!(bad_json.body.contains("\"offset\":14"), "{}", bad_json.body);

    // Structurally invalid: the body names the offending stage index.
    let bad_stage = post_json(
        addr,
        "/carve",
        r#"{"pipeline": [{"limit": 3}, {"frobnicate": {}}]}"#,
    );
    assert_eq!(bad_stage.status, 400);
    assert!(bad_stage.body.contains("\"kind\":\"structure\""), "{}", bad_stage.body);
    assert!(bad_stage.body.contains("\"stage\":1"), "{}", bad_stage.body);

    // Validation failure: stage index plus the dotted field path.
    let bad_field = post_json(
        addr,
        "/carve",
        r#"{"pipeline": [{"match": {"sizes": {"gte": 2}}}]}"#,
    );
    assert_eq!(bad_field.status, 400);
    assert!(bad_field.body.contains("\"kind\":\"validation\""), "{}", bad_field.body);
    assert!(bad_field.body.contains("\"path\":\"sizes\""), "{}", bad_field.body);

    // Unknown pinned version: 404 with the same typed shape.
    let unknown = post_json(addr, "/carve", r#"{"version": 9, "pipeline": [{"count": true}]}"#);
    assert_eq!(unknown.status, 404);
    assert!(unknown.body.contains("\"kind\":\"unknown-version\""), "{}", unknown.body);
    let unknown = post_json(addr, "/carve/explain", r#"{"version": 9, "pipeline": []}"#);
    assert_eq!(unknown.status, 404);

    // The form-encoded knob path still works beside the JSON path.
    let form = post_form(addr, "/carve", "preset=nc1&sample=50&output=10");
    assert_eq!(form.status, 200, "{}", form.body);

    handle.shutdown();
}

#[test]
fn body_cap_is_configurable_and_answers_413_json() {
    let store = build_store(34, 200, 5);
    let config = ServeConfig {
        max_body_bytes: 96,
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::new(
        Arc::new(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1))),
        config,
    ));
    let handle = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = handle.addr();

    let small = r#"{"pipeline": [{"count": true}]}"#;
    assert!(small.len() <= 96);
    assert_eq!(post_json(addr, "/carve", small).status, 200);

    let big = format!(
        r#"{{"pipeline": [{{"match": {{"ncid": {{"eq": "{}"}}}}}}]}}"#,
        "X".repeat(96)
    );
    let rejected = post_json(addr, "/carve", &big);
    assert_eq!(rejected.status, 413, "{}", rejected.body);
    assert_eq!(
        rejected.header("content-type"),
        Some("application/json; charset=utf-8")
    );
    assert!(rejected.body.contains("\"kind\":\"too-large\""), "{}", rejected.body);
    assert!(rejected.body.contains("96"), "{}", rejected.body);

    // The connection-level rejection leaves the service healthy.
    assert_eq!(get(addr, "/healthz").status, 200);

    handle.shutdown();
}

#[test]
fn query_carve_survives_non_intersecting_publish() {
    let store = build_store(35, 300, 8);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    // Pick a real cluster and pin the query to it by ncid.
    let snapshot = state.registry().current();
    let target = snapshot.store().clusters()[0].0.clone();
    let other = snapshot.store().clusters()[1].0.clone();
    let q = format!(
        r#"{{"pipeline": [{{"match": {{"ncid": {{"eq": "{target}"}}}}}}]}}"#
    );

    let cold = post_json(addr, "/carve", &q);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(cold.header("x-matched-clusters"), Some("1"));

    // Publish v2 with a delta that revises a *different* cluster: the
    // cached query carve provably cannot change and is carried forward.
    state.publish(
        ServeSnapshot::capture(&store, 2),
        Some(PublishDelta {
            version: 2,
            date: "s9".to_string(),
            founded: Vec::new(),
            revised: vec![other],
        }),
    );

    let after = post_json(addr, "/carve", &q);
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(after.header("x-cache"), Some("hit"), "carried forward");
    assert_eq!(after.header("x-version"), Some("2"));
    assert_eq!(after.body, cold.body, "bit-identical across the publish");

    // A delta revising the matched cluster itself invalidates the entry.
    state.publish(
        ServeSnapshot::capture(&store, 3),
        Some(PublishDelta {
            version: 3,
            date: "s10".to_string(),
            founded: Vec::new(),
            revised: vec![target],
        }),
    );
    let recomputed = post_json(addr, "/carve", &q);
    assert_eq!(recomputed.header("x-cache"), Some("miss"));
    assert_eq!(recomputed.body, cold.body, "same store contents, same carve");

    handle.shutdown();
}

#[test]
fn concurrent_carves_match_direct_customize_bit_for_bit() {
    let store = build_store(21, 400, 10);
    let scorer = scorer_for(&store);
    let params = CustomizeParams {
        h_low: 0.0,
        h_high: 0.5,
        sample_clusters: 200,
        output_clusters: 40,
        seed: 5,
    };
    let direct = customize(&store, &scorer, &params);
    let mut expected = render_lines(&direct).join("\n");
    if !expected.is_empty() {
        expected.push('\n');
    }

    let (_state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();
    let form = format!(
        "version=1&h_low={}&h_high={}&sample={}&output={}&seed={}&page_size=10000",
        params.h_low, params.h_high, params.sample_clusters, params.output_clusters, params.seed
    );

    let total_records = direct.record_count();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let expected = &expected;
            let form = &form;
            scope.spawn(move || {
                let reply = post_form(addr, "/carve", form);
                assert_eq!(reply.status, 200, "{}", reply.body);
                assert_eq!(reply.header("x-version"), Some("1"));
                assert_eq!(
                    reply.header("x-total-records"),
                    Some(total_records.to_string().as_str())
                );
                assert_eq!(&reply.body, expected, "carve differs from direct customize");
            });
        }
    });

    handle.shutdown();
}

#[test]
fn pages_reassemble_the_full_carve() {
    let store = build_store(22, 300, 8);
    let (_state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    let full = get(addr, "/datasets/nc3?seed=3&sample=150&output=30&page_size=10000");
    assert_eq!(full.status, 200);
    let total: usize = full.header("x-total-records").unwrap().parse().unwrap();
    assert!(total > 0, "carve should produce records");

    let mut reassembled = String::new();
    let mut page = 0;
    loop {
        let reply = get(
            addr,
            &format!("/datasets/nc3?seed=3&sample=150&output=30&page_size=7&page={page}"),
        );
        assert_eq!(reply.status, 200);
        let got: usize = reply.header("x-page-records").unwrap().parse().unwrap();
        if got == 0 {
            break;
        }
        assert!(got <= 7);
        reassembled.push_str(&reply.body);
        page += 1;
    }
    assert_eq!(reassembled, full.body, "paged body differs from full body");
    assert_eq!(page, total.div_ceil(7));

    handle.shutdown();
}

#[test]
fn cache_serves_repeats_and_counts_hits() {
    let store = build_store(23, 300, 8);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    let cold = get(addr, "/datasets/nc1?seed=8&sample=100&output=20");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    let warm = get(addr, "/datasets/nc1?seed=8&sample=100&output=20");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    // Pagination hits the same cache entry instead of re-carving.
    let paged = get(addr, "/datasets/nc1?seed=8&sample=100&output=20&page_size=5&page=1");
    assert_eq!(paged.header("x-cache"), Some("hit"));

    let stats = state.engine().cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 2);

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("nc_serve_cache_hits_total 2\n"));
    assert!(metrics.body.contains("nc_serve_cache_misses_total 1\n"));
    assert!(metrics
        .body
        .contains("nc_serve_endpoint_requests_total{endpoint=\"datasets\"} 3\n"));

    handle.shutdown();
}

#[test]
fn publish_swaps_current_while_old_versions_stay_pinnable() {
    let store_v1 = build_store(24, 250, 6);
    let store_v2 = build_store(25, 350, 6);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store_v1, 1)));
    let addr = handle.addr();

    let before = get(addr, "/datasets/nc2?seed=2&sample=100&output=20");
    assert_eq!(before.header("x-version"), Some("1"));

    state.registry().publish(ServeSnapshot::capture(&store_v2, 2));

    // Unpinned requests now carve the new version...
    let after = get(addr, "/datasets/nc2?seed=2&sample=100&output=20");
    assert_eq!(after.header("x-version"), Some("2"));
    // ...while the old version stays addressable and bit-stable.
    let pinned = get(addr, "/datasets/nc2?seed=2&sample=100&output=20&version=1");
    assert_eq!(pinned.header("x-version"), Some("1"));
    assert_eq!(pinned.header("x-cache"), Some("hit"), "same carve as `before`");
    assert_eq!(pinned.body, before.body);

    // Never-published versions are a 404.
    let missing = get(addr, "/datasets/nc2?version=9");
    assert_eq!(missing.status, 404);

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.starts_with("ok\nversion 2\n"));

    handle.shutdown();
}

/// Reassemble a `Transfer-Encoding: chunked` body: strip the hex size
/// lines and the zero-length terminator.
fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
    }
    out
}

#[test]
fn watch_streams_deltas_as_chunked_json_lines() {
    let store = build_store(31, 250, 6);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    // A subscriber already at the current version gets an empty window.
    let current = get(addr, "/watch?from=1");
    assert_eq!(current.status, 200, "{}", current.body);
    assert_eq!(current.header("transfer-encoding"), Some("chunked"));
    assert_eq!(current.header("x-version"), Some("1"));
    assert_eq!(current.header("x-deltas"), Some("0"));
    assert_eq!(dechunk(&current.body), "{\"from\":1,\"current\":1,\"deltas\":0}\n");

    // Publish v2 with a recorded delta; the window now carries it.
    state.publish(
        ServeSnapshot::capture(&store, 2),
        Some(PublishDelta {
            version: 2,
            date: "s2".to_string(),
            founded: vec!["F1".to_string()],
            revised: vec!["C1".to_string(), "C2".to_string()],
        }),
    );
    let caught_up = get(addr, "/watch?from=1");
    assert_eq!(caught_up.status, 200, "{}", caught_up.body);
    assert_eq!(caught_up.header("x-version"), Some("2"));
    assert_eq!(caught_up.header("x-deltas"), Some("1"));
    assert_eq!(
        dechunk(&caught_up.body),
        "{\"from\":1,\"current\":2,\"deltas\":1}\n\
         {\"version\":2,\"date\":\"s2\",\"founded\":[\"F1\"],\"revised\":[\"C1\",\"C2\"]}\n"
    );

    // Version 1 was published without a delta, so a subscriber from 0
    // hits a hole in the chain and must re-fetch a full carve.
    let gapped = get(addr, "/watch?from=0");
    assert_eq!(gapped.status, 410, "{}", gapped.body);
    assert_eq!(gapped.header("x-version"), Some("2"));

    // Parameter validation and method guard.
    assert_eq!(get(addr, "/watch").status, 400);
    assert_eq!(get(addr, "/watch?from=banana").status, 400);
    assert_eq!(get(addr, "/watch?from=1&bogus=1").status, 400);
    assert_eq!(
        send(addr, "POST /watch HTTP/1.1\r\nHost: t\r\n\r\n").status,
        405
    );

    let metrics = get(addr, "/metrics");
    assert!(metrics
        .body
        .contains("nc_serve_endpoint_requests_total{endpoint=\"watch\"} 6\n"));

    handle.shutdown();
}

#[test]
fn error_paths_return_4xx_not_5xx() {
    let store = build_store(26, 200, 5);
    let (_state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    assert_eq!(get(addr, "/no/such/route").status, 404);
    assert_eq!(get(addr, "/datasets/nc9").status, 400);
    assert_eq!(get(addr, "/datasets/nc1?frobnicate=1").status, 400);
    assert_eq!(get(addr, "/datasets/nc1?h_low=0.9&h_high=0.1").status, 400);
    assert_eq!(get(addr, "/datasets/nc1?page_size=0").status, 400);
    assert_eq!(get(addr, "/datasets/nc1?seed=NaN").status, 400);
    // Wrong method — on fixed routes and on the /datasets/* prefix alike.
    assert_eq!(get(addr, "/carve").status, 405);
    assert_eq!(
        send(addr, "DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n").status,
        405
    );
    assert_eq!(
        send(addr, "POST /datasets/nc1 HTTP/1.1\r\nHost: t\r\n\r\n").status,
        405
    );
    // Not HTTP at all.
    assert_eq!(send(addr, "gibberish\r\n\r\n").status, 400);
    // A multibyte char straddling a percent escape must be answered
    // (400), not panic the worker; the server must still serve after.
    assert_eq!(get(addr, "/datasets/nc1?a=%€x").status, 400);
    assert_eq!(get(addr, "/healthz").status, 200);

    handle.shutdown();
}

#[test]
fn saturated_queue_returns_503_with_retry_after() {
    let store = build_store(28, 200, 5);
    // One worker and a one-slot queue so two idle connections saturate
    // the service deterministically.
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::new(
        Arc::new(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1))),
        config,
    ));
    let handle = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = handle.addr();
    let pause = std::time::Duration::from_millis(300);

    // Occupy the only worker: a connection that sends nothing keeps it
    // blocked in read until we hang up.
    let worker_hog = TcpStream::connect(addr).expect("connect worker hog");
    std::thread::sleep(pause);
    // Fill the single queue slot the same way.
    let queue_hog = TcpStream::connect(addr).expect("connect queue hog");
    std::thread::sleep(pause);

    // The next connection must be turned away immediately — not parked
    // in the queue behind the hogs.
    let reply = get(addr, "/healthz");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(state.metrics().saturated() >= 1);

    // Release the hogs: the service recovers and reports the episode.
    // (Recovery is not instant — the worker still has to drain the two
    // dead connections — so give it a few tries.)
    drop(worker_hog);
    drop(queue_hog);
    let mut health = get(addr, "/healthz");
    for _ in 0..20 {
        if health.status == 200 {
            break;
        }
        std::thread::sleep(pause);
        health = get(addr, "/healthz");
    }
    assert_eq!(health.status, 200, "{}", health.body);
    let metrics = get(addr, "/metrics");
    let saturated = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("nc_serve_queue_saturated_total "))
        .expect("saturation counter exported");
    assert!(saturated.parse::<u64>().unwrap() >= 1);

    handle.shutdown();
}

#[test]
fn panicking_handler_returns_500_and_the_worker_pool_survives() {
    let store = build_store(29, 200, 5);
    // A single worker: if the panic killed it, no later request could
    // ever be answered.
    let config = ServeConfig {
        workers: 1,
        panic_probe: true,
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::new(
        Arc::new(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1))),
        config,
    ));
    let handle = Server::spawn(Arc::clone(&state)).expect("bind ephemeral port");
    let addr = handle.addr();

    for round in 0..3 {
        let reply = get(addr, "/debug/panic");
        assert_eq!(reply.status, 500, "round {round}: {}", reply.body);
        assert!(reply.body.contains("panicked"), "round {round}: {}", reply.body);

        // The same (only) worker keeps serving.
        let health = get(addr, "/healthz");
        assert_eq!(health.status, 200, "round {round}: {}", health.body);
    }

    assert!(state.metrics().worker_panics() >= 3);
    let metrics = get(addr, "/metrics");
    let panics = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("nc_serve_worker_panics_total "))
        .expect("panic counter exported");
    assert!(panics.parse::<u64>().unwrap() >= 3, "{panics}");
    handle.shutdown();

    // Without the probe flag the route does not exist at all.
    let (_, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 2)));
    let reply = get(handle.addr(), "/debug/panic");
    assert_eq!(reply.status, 404, "{}", reply.body);
    handle.shutdown();
}

#[test]
fn shutdown_drains_and_releases_the_port() {
    let store = build_store(27, 200, 5);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    // A few requests in flight from multiple clients, then shut down.
    std::thread::scope(|scope| {
        for i in 0..4 {
            scope.spawn(move || {
                let reply = get(addr, &format!("/datasets/nc1?seed={i}&sample=50&output=10"));
                assert_eq!(reply.status, 200);
            });
        }
    });
    let served = state.metrics().requests_total();
    assert_eq!(served, 4);
    assert_eq!(state.metrics().in_flight(), 0);

    // shutdown() joins the accept thread, which joins the worker scope:
    // returning at all proves queued work was drained, not aborted.
    handle.shutdown();

    // The state survives the server and a fresh server can be spawned
    // over it (e.g. after a config change).
    let restarted = Server::spawn(Arc::clone(&state)).expect("respawn");
    let reply = get(restarted.addr(), "/healthz");
    assert_eq!(reply.status, 200);
    restarted.shutdown();
}

/// Pull the first `first_name` value out of a plaintext carve body so
/// the encoded body can be checked for plaintext leaks.
fn first_name_in(body: &str) -> String {
    let start = body.find("\"first_name\":\"").expect("plaintext first_name") + 14;
    let rest = &body[start..];
    let end = rest.find('"').expect("closing quote");
    rest[..end].to_string()
}

#[test]
fn encoded_carve_never_shares_a_cache_entry_with_plaintext() {
    let store = build_store(41, 300, 8);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    // Warm the plaintext entry.
    let plain = get(addr, "/datasets/nc1?seed=8&sample=100&output=20");
    assert_eq!(plain.status, 200);
    assert_eq!(plain.header("x-cache"), Some("miss"));
    assert_eq!(plain.header("x-encoding"), None);
    assert_eq!(
        get(addr, "/datasets/nc1?seed=8&sample=100&output=20").header("x-cache"),
        Some("hit")
    );

    // The same knobs with `encode=clk` must MISS: a warm plaintext
    // entry can never answer an encoded request.
    let target = "/datasets/nc1?seed=8&sample=100&output=20&encode=clk&encode_key=5";
    let encoded = get(addr, target);
    assert_eq!(encoded.status, 200, "{}", encoded.body);
    assert_eq!(encoded.header("x-cache"), Some("miss"));
    assert_eq!(
        encoded.header("x-encoding"),
        Some("enc=clk1|key=5|bits=1024|k=10|q=2")
    );

    // Same labels, no plaintext: every line carries the keyed token and
    // record CLK, and the plaintext values are gone.
    assert_eq!(
        encoded.body.lines().count(),
        plain.body.lines().count(),
        "one encoded line per plaintext record"
    );
    for line in encoded.body.lines() {
        assert!(line.contains("\"ncid_token\":\""), "{line}");
        assert!(line.contains("\"record_clk\":\""), "{line}");
    }
    let leaked = first_name_in(&plain.body);
    assert!(!leaked.is_empty());
    assert!(
        !encoded.body.contains(&leaked),
        "plaintext {leaked:?} leaked into the encoded body"
    );

    // The encoded entry is cached under its own key; replaying it does
    // not disturb the plaintext entry, and a different key misses again.
    assert_eq!(get(addr, target).header("x-cache"), Some("hit"));
    assert_eq!(
        get(addr, "/datasets/nc1?seed=8&sample=100&output=20").header("x-cache"),
        Some("hit"),
        "plaintext entry survives beside the encoded one"
    );
    let rekeyed = get(
        addr,
        "/datasets/nc1?seed=8&sample=100&output=20&encode=clk&encode_key=6",
    );
    assert_eq!(rekeyed.header("x-cache"), Some("miss"));
    assert_ne!(rekeyed.body, encoded.body, "different key, different encodings");

    // POST /carve with form knobs rides the same engine and cache.
    let form = post_form(
        addr,
        "/carve",
        "preset=nc1&seed=8&sample=100&output=20&encode=clk&encode_key=5",
    );
    assert_eq!(form.status, 200, "{}", form.body);
    assert_eq!(form.header("x-cache"), Some("hit"), "same encoded carve");
    assert_eq!(form.body, encoded.body);

    assert_eq!(state.engine().cache_stats().entries, 3);
    handle.shutdown();
}

#[test]
fn encoded_query_carves_key_separately_and_reject_document_output() {
    let store = build_store(42, 300, 8);
    let (state, handle) = spawn_server(SnapshotRegistry::new(ServeSnapshot::capture(&store, 1)));
    let addr = handle.addr();

    let q = r#"{"pipeline": [
        {"match": {"size": {"gte": 2}}},
        {"sample": {"size": 10, "seed": 3}}
    ]}"#;

    let plain = post_json(addr, "/carve", q);
    assert_eq!(plain.status, 200, "{}", plain.body);
    assert_eq!(plain.header("x-cache"), Some("miss"));

    // The encoded twin of a warm plaintext query carve still misses,
    // carries the negotiated encoding, and leaks no plaintext.
    let encoded = post_json(addr, "/carve?encode=clk&encode_key=9", q);
    assert_eq!(encoded.status, 200, "{}", encoded.body);
    assert_eq!(encoded.header("x-cache"), Some("miss"));
    assert_eq!(
        encoded.header("x-encoding"),
        Some("enc=clk1|key=9|bits=1024|k=10|q=2")
    );
    assert_eq!(encoded.body.lines().count(), plain.body.lines().count());
    let leaked = first_name_in(&plain.body);
    assert!(!encoded.body.contains(&leaked), "{leaked:?} leaked");

    // Both twins stay warm under their own fingerprints.
    assert_eq!(post_json(addr, "/carve", q).header("x-cache"), Some("hit"));
    assert_eq!(
        post_json(addr, "/carve?encode=clk&encode_key=9", q).header("x-cache"),
        Some("hit")
    );

    // A document-output pipeline cannot be encoded: its projections
    // would expose plaintext. Typed 400, and nothing is cached for it.
    let entries = state.engine().cache_stats().entries;
    let doc = post_json(
        addr,
        "/carve?encode=clk",
        r#"{"pipeline": [{"count": true}]}"#,
    );
    assert_eq!(doc.status, 400, "{}", doc.body);
    assert!(doc.body.contains("cluster-output"), "{}", doc.body);
    assert_eq!(state.engine().cache_stats().entries, entries);

    // Bad encoding knobs answer 400 before the query is even parsed.
    let bad = post_json(addr, "/carve?encode=rot13", q);
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("unknown encoding"), "{}", bad.body);
    let orphan = post_json(addr, "/carve?encode_key=4", q);
    assert_eq!(orphan.status, 400);
    assert!(orphan.body.contains("requires `encode=clk`"), "{}", orphan.body);

    handle.shutdown();
}
