//! Customization tests: the NC1/NC2/NC3 recipe produces datasets of
//! increasing measured dirtiness (Section 6.5).

use nc_suite::bridge;
use nc_suite::core::customize::{customize, CustomizeParams};
use nc_suite::core::heterogeneity::{AttributeWeights, HeterogeneityScorer, Scope};
use nc_suite::core::pipeline::{GenerationConfig, TestDataGenerator};
use nc_suite::core::record::DedupPolicy;
use nc_suite::votergen::config::GeneratorConfig;

fn build() -> (nc_suite::core::pipeline::GenerationOutcome, HeterogeneityScorer) {
    let outcome = TestDataGenerator::run(GenerationConfig {
        generator: GeneratorConfig {
            seed: 11,
            initial_population: 800,
            ..Default::default()
        },
        policy: DedupPolicy::Trimmed,
        snapshots: 14,
    });
    let firsts: Vec<_> = outcome
        .store
        .cluster_ids()
        .iter()
        .filter_map(|(n, _)| outcome.store.cluster_rows(n).into_iter().next())
        .collect();
    let weights = AttributeWeights::from_rows(Scope::Person, firsts.iter());
    (outcome, HeterogeneityScorer::new(weights))
}

/// Measured heterogeneity must increase from the NC1 band to the NC3
/// band.
#[test]
fn bands_order_measured_heterogeneity() {
    let (outcome, scorer) = build();
    let store = &outcome.store;

    let mut avgs = Vec::new();
    for params in [
        CustomizeParams::nc1(600, 150, 3),
        CustomizeParams::nc2(600, 150, 3),
        CustomizeParams::nc3(600, 150, 3),
    ] {
        let ds = customize(store, &scorer, &params);
        let mut sum = 0.0;
        let mut n = 0u64;
        for c in &ds.clusters {
            for h in scorer.pair_scores(&c.records) {
                sum += h;
                n += 1;
            }
        }
        avgs.push(if n == 0 { 0.0 } else { sum / n as f64 });
    }
    assert!(
        avgs[0] < avgs[1],
        "NC1 should be cleaner than NC2: {avgs:?}"
    );
    // NC3 keeps only very heterogeneous pairs; with a small archive it
    // may contain few multi-record clusters, but whatever pairs remain
    // must be at least as dirty as NC2's.
    assert!(
        avgs[2] >= avgs[1] || avgs[2] == 0.0,
        "NC3 should be dirtiest: {avgs:?}"
    );
}

/// Every kept pair of a customized cluster respects the requested
/// heterogeneity band against its predecessors (by construction).
#[test]
fn kept_records_respect_band() {
    let (outcome, scorer) = build();
    let params = CustomizeParams {
        h_low: 0.05,
        h_high: 0.3,
        sample_clusters: 300,
        output_clusters: 60,
        seed: 4,
    };
    let ds = customize(&outcome.store, &scorer, &params);
    for c in ds.clusters.iter().filter(|c| c.records.len() >= 2) {
        for i in 0..c.records.len() {
            for j in (i + 1)..c.records.len() {
                let h = scorer.pair(&c.records[i], &c.records[j]);
                assert!(
                    (params.h_low..=params.h_high).contains(&h),
                    "cluster {} pair ({i},{j}) out of band: {h}",
                    c.ncid
                );
            }
        }
    }
}

/// The customized dataset converts cleanly into the generic detection
/// dataset with the gold standard intact.
#[test]
fn bridge_preserves_gold_standard() {
    let (outcome, scorer) = build();
    let ds = customize(
        &outcome.store,
        &scorer,
        &CustomizeParams::nc1(500, 100, 9),
    );
    let attrs = Scope::Person.attrs();
    let data = bridge::dataset_from_custom(&ds, attrs);
    assert_eq!(data.len(), ds.record_count());
    assert_eq!(data.gold_pairs().len() as u64, ds.duplicate_pairs());
    assert_eq!(data.num_attrs(), attrs.len());
}

/// Customization never invents records: every output record appears in
/// the source cluster.
#[test]
fn customization_is_a_selection() {
    let (outcome, scorer) = build();
    let ds = customize(
        &outcome.store,
        &scorer,
        &CustomizeParams::nc2(400, 80, 12),
    );
    for c in &ds.clusters {
        let source = outcome.store.cluster_rows(&c.ncid);
        for r in &c.records {
            assert!(
                source.iter().any(|s| s == r),
                "record not found in source cluster {}",
                c.ncid
            );
        }
        assert!(c.records.len() <= source.len());
    }
}
