//! Fault-injection tests across the ingest and persistence layers:
//! quarantine-mode import against corrupted TSV archives, crash-safe
//! store persistence under deterministic chaos, and checkpointed
//! archive runs that resume after an interruption.

use std::path::{Path, PathBuf};

use nc_suite::core::checkpoint;
use nc_suite::core::cluster::ClusterStore;
use nc_suite::core::record::DedupPolicy;
use nc_suite::core::tsv::{self, ImportOptions, TsvError};
use nc_suite::docstore::faults::{self, Fault};
use nc_suite::docstore::persist;
use nc_suite::votergen::config::GeneratorConfig;
use nc_suite::votergen::registry::Registry;
use nc_suite::votergen::snapshot::standard_calendar;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nc_faultinj_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_archive(dir: &Path, seed: u64, pop: usize, snapshots: usize) {
    let mut reg = Registry::new(GeneratorConfig {
        seed,
        initial_population: pop,
        ..Default::default()
    });
    for info in standard_calendar().iter().take(snapshots) {
        let snap = reg.generate_snapshot(info);
        tsv::write_snapshot(dir, &snap).unwrap();
    }
}

/// Corrupt the archive's second snapshot file: destroy one data line in
/// place and append a torn partial line. Returns `(dirty_dir,
/// expected_dir)` where the expected archive holds the same files with
/// the destroyed line removed — what a quarantine run should import.
fn corrupted_archive(seed: u64) -> (PathBuf, PathBuf) {
    let dirty = tmp_dir(&format!("dirty_{seed}"));
    write_archive(&dirty, seed, 70, 2);
    let expected = tmp_dir(&format!("expected_{seed}"));
    std::fs::create_dir_all(&expected).unwrap();

    let files = tsv::archive_files(&dirty).unwrap();
    std::fs::copy(&files[0], expected.join(files[0].file_name().unwrap())).unwrap();

    let text = std::fs::read_to_string(&files[1]).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let victim = lines.len() / 2; // a data line well inside the file
    let mut clean: Vec<&str> = lines.clone();
    clean.remove(victim);
    std::fs::write(
        expected.join(files[1].file_name().unwrap()),
        clean.join("\n") + "\n",
    )
    .unwrap();

    lines[victim] = "###corrupted-sector###"; // no tabs: field-count mismatch
    std::fs::write(&files[1], lines.join("\n") + "\n").unwrap();
    // A crash mid-append leaves a torn line without a newline.
    faults::inject(&files[1], &Fault::AppendPartial(b"TORN\tPARTIAL".to_vec())).unwrap();

    (dirty, expected)
}

/// Quarantine-mode import of a corrupted archive equals a strict import
/// of the same archive with the corrupted rows removed.
#[test]
fn quarantine_run_equals_clean_run_minus_quarantined_rows() {
    let (dirty, expected) = corrupted_archive(41);
    let sink = dirty.join("quarantine.tsv");

    let mut dirty_store = ClusterStore::new();
    let outcome = tsv::import_archive_dir_with(
        &mut dirty_store,
        &dirty,
        DedupPolicy::Trimmed,
        1,
        &ImportOptions::quarantine().with_sink(&sink),
    )
    .unwrap();

    let mut clean_store = ClusterStore::new();
    let clean_stats =
        tsv::import_archive_dir(&mut clean_store, &expected, DedupPolicy::Trimmed, 1).unwrap();

    // Two bad lines diverted: the destroyed line and the torn tail.
    assert_eq!(outcome.quarantine.lines_quarantined, 2);
    assert_eq!(outcome.quarantine.files_quarantined, 0);
    assert_eq!(outcome.stats[1].quarantined, 2);

    // The surviving rows import exactly like the clean archive.
    assert_eq!(outcome.stats[0], clean_stats[0]);
    assert_eq!(outcome.stats[1].total_rows, clean_stats[1].total_rows);
    assert_eq!(outcome.stats[1].new_records, clean_stats[1].new_records);
    assert_eq!(outcome.stats[1].new_clusters, clean_stats[1].new_clusters);
    assert_eq!(dirty_store.record_count(), clean_store.record_count());
    assert_eq!(dirty_store.cluster_count(), clean_store.cluster_count());

    // The sink holds both raw lines with provenance comments.
    let text = std::fs::read_to_string(&sink).unwrap();
    assert!(text.contains("###corrupted-sector###"), "{text}");
    assert!(text.contains("TORN\tPARTIAL"), "{text}");
    assert!(text.contains("field-count-mismatch"), "{text}");

    std::fs::remove_dir_all(dirty).unwrap();
    std::fs::remove_dir_all(expected).unwrap();
}

/// Strict mode keeps the historical fail-fast contract on the same
/// corruption.
#[test]
fn strict_mode_still_fails_fast() {
    let (dirty, expected) = corrupted_archive(42);
    let mut store = ClusterStore::new();
    let err =
        tsv::import_archive_dir(&mut store, &dirty, DedupPolicy::Trimmed, 1).unwrap_err();
    assert!(matches!(err, TsvError::BadLine { .. }), "{err}");
    std::fs::remove_dir_all(dirty).unwrap();
    std::fs::remove_dir_all(expected).unwrap();
}

/// The error budget turns systematic corruption into a hard failure.
#[test]
fn error_budget_aborts_broken_archive() {
    let (dirty, expected) = corrupted_archive(43);
    let mut store = ClusterStore::new();
    let err = tsv::import_archive_dir_with(
        &mut store,
        &dirty,
        DedupPolicy::Trimmed,
        1,
        &ImportOptions::quarantine().with_budget(1),
    )
    .unwrap_err();
    assert!(matches!(err, TsvError::QuarantineBudget { budget: 1, .. }), "{err}");
    std::fs::remove_dir_all(dirty).unwrap();
    std::fs::remove_dir_all(expected).unwrap();
}

/// Kill-test: a persisted store truncated at *any* byte offset never
/// panics on salvage and never loses more than the final partial
/// document.
#[test]
fn truncated_store_salvages_at_every_offset() {
    // Small store: the loop below salvages at every single byte offset,
    // so the file must stay small for the exhaustive sweep to be cheap.
    let archive = tmp_dir("trunc_archive");
    write_archive(&archive, 44, 8, 1);
    let mut store = ClusterStore::new();
    tsv::import_archive_dir(&mut store, &archive, DedupPolicy::Trimmed, 1).unwrap();
    store.finalize();

    let saved = tmp_dir("trunc_saved");
    std::fs::create_dir_all(&saved).unwrap();
    let full_path = saved.join("store.jsonl");
    persist::save(store.collection(), &full_path).unwrap();
    let full = std::fs::read(&full_path).unwrap();
    let docs_total = store.collection().len();

    // Every offset, exhaustively — this is the durability contract.
    let cut_path = saved.join("cut.jsonl");
    let mut prev_recovered = 0usize;
    for k in 0..=full.len() {
        std::fs::write(&cut_path, &full[..k]).unwrap();
        let s = persist::salvage("clusters", &cut_path).unwrap();
        assert!(
            s.report.docs_recovered <= docs_total,
            "offset {k}: recovered more than saved"
        );
        assert!(
            s.report.docs_recovered + 1 >= prev_recovered,
            "offset {k}: salvage went backwards"
        );
        assert!(s.report.lines_dropped <= 1, "offset {k}: more than one line lost");
        prev_recovered = s.report.docs_recovered;
    }
    // The untouched file is clean and complete.
    let s = persist::salvage("clusters", &full_path).unwrap();
    assert!(s.report.is_clean());
    assert_eq!(s.report.docs_recovered, docs_total);

    std::fs::remove_dir_all(archive).unwrap();
    std::fs::remove_dir_all(saved).unwrap();
}

/// Deterministic chaos (bit flips, deletions, torn appends) never makes
/// salvage panic, and it recovers a consistent prefix.
#[test]
fn chaos_on_persisted_store_never_panics() {
    let archive = tmp_dir("chaos_archive");
    write_archive(&archive, 45, 25, 1);
    let mut store = ClusterStore::new();
    tsv::import_archive_dir(&mut store, &archive, DedupPolicy::Trimmed, 1).unwrap();
    store.finalize();

    let dir = tmp_dir("chaos_store");
    std::fs::create_dir_all(&dir).unwrap();
    let pristine = dir.join("pristine.jsonl");
    persist::save(store.collection(), &pristine).unwrap();
    let docs_total = store.collection().len();

    let damaged = dir.join("damaged.jsonl");
    for seed in 0..16u64 {
        std::fs::copy(&pristine, &damaged).unwrap();
        let applied = faults::chaos(&damaged, seed, 3).unwrap();
        let s = persist::salvage("clusters", &damaged).unwrap();
        assert!(
            s.report.docs_recovered <= docs_total,
            "seed {seed}: {applied:?}"
        );
        // Strict load must flag damage (or the faults happened to be
        // benign) — but never panic.
        let _ = persist::load("clusters", &damaged);
    }

    // Sanity for the harness itself: same seed, same faults.
    std::fs::copy(&pristine, &damaged).unwrap();
    let a = faults::chaos(&damaged, 7, 4).unwrap();
    std::fs::copy(&pristine, &damaged).unwrap();
    let b = faults::chaos(&damaged, 7, 4).unwrap();
    assert_eq!(a, b);

    std::fs::remove_dir_all(archive).unwrap();
    std::fs::remove_dir_all(dir).unwrap();
}

/// `DocStore::save_all` is crash-safe as a *batch*: every collection
/// file is written atomically and the directory entry batch is fsynced
/// afterwards, so damage to any one saved file never takes the other
/// collections with it — `salvage_all` recovers them bit-intact.
#[test]
fn save_all_batch_survives_chaos_on_any_file() {
    use nc_suite::docstore::store::DocStore;

    let archive = tmp_dir("saveall_archive");
    write_archive(&archive, 47, 25, 1);
    let mut store = ClusterStore::new();
    tsv::import_archive_dir(&mut store, &archive, DedupPolicy::Trimmed, 1).unwrap();

    let docs = DocStore::new();
    for (i, (ncid, _)) in store.cluster_ids().iter().enumerate() {
        let name = format!("part{}", i % 3);
        let coll = docs.collection(&name);
        let mut coll = coll.write();
        for row in store.cluster_rows(ncid) {
            coll.insert(nc_suite::docstore::doc! { "ncid" => ncid.as_str(), "tsv" => row.to_tsv() });
        }
    }
    let saved = tmp_dir("saveall_dir");
    docs.save_all(&saved).unwrap();
    let sizes: Vec<usize> = (0..3)
        .map(|i| docs.collection(&format!("part{i}")).read().len())
        .collect();

    for victim in 0..3usize {
        for seed in 0..8u64 {
            let dir = tmp_dir("saveall_damaged");
            std::fs::create_dir_all(&dir).unwrap();
            for i in 0..3 {
                let name = format!("part{i}.jsonl");
                std::fs::copy(saved.join(&name), dir.join(&name)).unwrap();
            }
            faults::chaos(&dir.join(format!("part{victim}.jsonl")), seed, 3).unwrap();
            let (salvaged, reports) = DocStore::salvage_all(&dir).unwrap();
            for (name, report) in &reports {
                let i: usize = name.strip_prefix("part").unwrap().parse().unwrap();
                if i != victim {
                    assert!(report.is_clean(), "undamaged {name} must load clean");
                    assert_eq!(salvaged.collection(name).read().len(), sizes[i]);
                }
            }
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    std::fs::remove_dir_all(archive).unwrap();
    std::fs::remove_dir_all(saved).unwrap();
}

/// Kill-test: an archive import interrupted after snapshot `k` resumes
/// to byte-identical import statistics — even with quarantined rows in
/// the mix.
#[test]
fn interrupted_quarantine_import_resumes_identically() {
    let (dirty, expected) = corrupted_archive(46);
    let options = ImportOptions::quarantine();

    // Reference: uninterrupted resumable run over the dirty archive.
    let ref_state = tmp_dir("resume_ref");
    let reference = checkpoint::import_archive_dir_resumable(
        &dirty,
        &ref_state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .unwrap();

    // Interrupted: first run only sees the first snapshot, second run
    // the full archive.
    let partial = tmp_dir("resume_partial");
    std::fs::create_dir_all(&partial).unwrap();
    let files = tsv::archive_files(&dirty).unwrap();
    std::fs::copy(&files[0], partial.join(files[0].file_name().unwrap())).unwrap();

    let state = tmp_dir("resume_state");
    let first = checkpoint::import_archive_dir_resumable(
        &partial,
        &state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .unwrap();
    assert_eq!(first.imported_snapshots, 1);

    let second = checkpoint::import_archive_dir_resumable(
        &dirty,
        &state,
        DedupPolicy::Trimmed,
        1,
        &options,
    )
    .unwrap();
    assert_eq!(second.resumed_snapshots, 1);
    assert_eq!(second.imported_snapshots, 1);
    assert_eq!(second.stats, reference.stats, "resumed stats must be identical");
    assert_eq!(second.quarantine, reference.quarantine);
    assert_eq!(second.store.record_count(), reference.store.record_count());
    assert_eq!(second.store.cluster_count(), reference.store.cluster_count());

    for d in [dirty, expected, ref_state, partial, state] {
        let _ = std::fs::remove_dir_all(d);
    }
}
